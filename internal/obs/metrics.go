package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64 (e.g. a progress fraction or a
// current temperature). The zero value is ready to use; nil is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer aggregates wall-clock durations of one pipeline stage: call
// count, total and maximum. The zero value is ready to use; nil is a
// no-op (Start on a nil timer skips even the clock read).
type Timer struct {
	count atomic.Int64
	total atomic.Int64 // nanoseconds
	max   atomic.Int64 // nanoseconds
}

// Span is one in-flight timed region, created by Timer.Start.
type Span struct {
	t  *Timer
	t0 time.Time
}

// Start opens a span; close it with End. On a nil timer the returned
// span is inert and no clock is read.
func (t *Timer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, t0: time.Now()}
}

// End closes the span, recording the elapsed time into its timer.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.Observe(time.Since(s.t0))
}

// Observe records one duration directly.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	ns := int64(d)
	t.count.Add(1)
	t.total.Add(ns)
	for {
		old := t.max.Load()
		if ns <= old || t.max.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Count returns how many durations were observed.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the summed duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.total.Load())
}

// Max returns the longest observed duration.
func (t *Timer) Max() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.max.Load())
}

// Histogram is a fixed-bin linear histogram over [Lo, Hi) with atomic
// bucket counts; samples outside the range land in underflow/overflow.
// Nil is a no-op.
type Histogram struct {
	lo, width   float64
	buckets     []atomic.Int64
	under, over atomic.Int64
	count       atomic.Int64
	sumBits     atomic.Uint64
}

func newHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{lo: lo, width: (hi - lo) / float64(n), buckets: make([]atomic.Int64, n)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			break
		}
	}
	i := int(math.Floor((v - h.lo) / h.width))
	switch {
	case i < 0:
		h.under.Add(1)
	case i >= len(h.buckets):
		h.over.Add(1)
	default:
		h.buckets[i].Add(1)
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the mean of observed samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (the rows/series themselves are produced by
// cmd/hotgauge-experiments; these benchmarks exercise each experiment's
// computational kernel at reduced scale so `go test -bench=.` measures the
// whole reproduction pipeline), plus the design-choice ablations called
// out in DESIGN.md §4.
package hotgauge

import (
	"math"
	"testing"

	"hotgauge/internal/core"
	"hotgauge/internal/floorplan"
	"hotgauge/internal/geometry"
	"hotgauge/internal/mitigate"
	"hotgauge/internal/obs"
	"hotgauge/internal/perf"
	"hotgauge/internal/power"
	"hotgauge/internal/sim"
	"hotgauge/internal/stats"
	"hotgauge/internal/tech"
	"hotgauge/internal/thermal"
	"hotgauge/internal/workload"
)

// benchRun executes one short co-simulation; steps and resolution are
// chosen so an iteration stays in the tens of milliseconds.
func benchRun(b *testing.B, cfg sim.Config) *sim.Result {
	b.Helper()
	res, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func benchConfig(node tech.Node, name string, steps int) sim.Config {
	prof, err := workload.Lookup(name)
	if err != nil {
		panic(err)
	}
	return sim.Config{
		Floorplan: floorplan.Config{Node: node},
		Workload:  prof,
		Steps:     steps,
	}
}

// ---- Tables ----

func BenchmarkTable3CdynValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := power.ValidateCdyn(tech.Node14); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4PsiTDP(b *testing.B) {
	fp := floorplan.MustNew(floorplan.Config{Node: tech.Node7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := thermal.Psi(fp.Die, thermal.DefaultResolution); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures ----

func BenchmarkFig01HotspotSnapshot(b *testing.B) {
	cfg := benchConfig(tech.Node7, "gcc", 8)
	cfg.Warmup = sim.WarmupIdle
	for i := 0; i < b.N; i++ {
		res := benchRun(b, cfg)
		analyzer, err := core.NewAnalyzer(res.FinalField, core.DefaultDefinition())
		if err != nil {
			b.Fatal(err)
		}
		if analyzer.Detect(res.FinalField) == nil {
			b.Fatal("snapshot produced no hotspots")
		}
	}
}

func BenchmarkFig02DeltaDistribution(b *testing.B) {
	cfg := benchConfig(tech.Node7, "bzip2", 8)
	cfg.Record.CellDeltas = true
	for i := 0; i < b.N; i++ {
		res := benchRun(b, cfg)
		if res.DeltaHist.Total() == 0 {
			b.Fatal("no deltas recorded")
		}
	}
}

func BenchmarkFig07SeveritySurface(b *testing.B) {
	sum := 0.0
	for i := 0; i < b.N; i++ {
		for t := 40.0; t <= 130; t += 0.5 {
			for m := 0.0; m <= 60; m += 0.5 {
				sum += core.Severity(t, m)
			}
		}
	}
	if sum < 0 {
		b.Fatal("impossible")
	}
}

func BenchmarkFig08WarmupHistogram(b *testing.B) {
	cfg := benchConfig(tech.Node7, "gcc", 8)
	cfg.Warmup = sim.WarmupIdle
	cfg.Record.TempPercentiles = true
	for i := 0; i < b.N; i++ {
		benchRun(b, cfg)
	}
}

func BenchmarkFig09MLTD(b *testing.B) {
	cfg := benchConfig(tech.Node7, "gobmk", 8)
	cfg.Warmup = sim.WarmupIdle
	cfg.Record.MLTD = true
	for i := 0; i < b.N; i++ {
		benchRun(b, cfg)
	}
}

func BenchmarkFig10TUHTechScaling(b *testing.B) {
	c7 := benchConfig(tech.Node7, "gcc", 60)
	c7.Warmup, c7.StopAtHotspot = sim.WarmupIdle, true
	c14 := benchConfig(tech.Node14, "gcc", 60)
	c14.Warmup, c14.StopAtHotspot = sim.WarmupIdle, true
	for i := 0; i < b.N; i++ {
		r7 := benchRun(b, c7)
		r14 := benchRun(b, c14)
		if !(r7.TUH <= r14.TUH) {
			b.Fatalf("TUH ordering violated: 7nm %v vs 14nm %v", r7.TUH, r14.TUH)
		}
	}
}

func BenchmarkFig11TUHPerBenchmark(b *testing.B) {
	var cfgs []sim.Config
	for _, name := range []string{"hmmer", "gobmk"} {
		for _, c := range []int{0, 6} {
			cfg := benchConfig(tech.Node7, name, 40)
			cfg.Core = c
			cfg.StopAtHotspot = true
			cfgs = append(cfgs, cfg)
		}
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.Campaign(cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12HotspotLocations(b *testing.B) {
	cfg := benchConfig(tech.Node7, "namd", 8)
	cfg.Warmup = sim.WarmupIdle
	cfg.Record.HotspotUnits = true
	for i := 0; i < b.N; i++ {
		res := benchRun(b, cfg)
		if len(res.HotspotUnit) == 0 {
			b.Fatal("no hotspot units")
		}
	}
}

func BenchmarkFig13UnitScaling(b *testing.B) {
	cfg := benchConfig(tech.Node7, "milc", 8)
	cfg.Warmup = sim.WarmupIdle
	cfg.Floorplan.KindScale = map[floorplan.Kind]float64{floorplan.KindFpIWin: 10}
	cfg.Record.Severity = true
	for i := 0; i < b.N; i++ {
		benchRun(b, cfg)
	}
}

func BenchmarkFig14RATScaling(b *testing.B) {
	cfg := benchConfig(tech.Node7, "gcc", 8)
	cfg.Warmup = sim.WarmupIdle
	cfg.Floorplan.KindScale = map[floorplan.Kind]float64{
		floorplan.KindRATInt: 10, floorplan.KindRATFp: 10,
	}
	cfg.Record.Severity = true
	for i := 0; i < b.N; i++ {
		benchRun(b, cfg)
	}
}

func BenchmarkSec5BICScaling(b *testing.B) {
	cfg := benchConfig(tech.Node7, "gcc", 8)
	cfg.Warmup = sim.WarmupIdle
	cfg.Floorplan.ICAreaFactor = 2.0
	cfg.Record.Severity = true
	for i := 0; i < b.N; i++ {
		benchRun(b, cfg)
	}
}

func BenchmarkSec2APowerDensity(b *testing.B) {
	fp := floorplan.MustNew(floorplan.Config{Node: tech.Node7})
	pm, err := power.NewModel(fp, tech.TurboPoint)
	if err != nil {
		b.Fatal(err)
	}
	prof, _ := workload.Lookup("bzip2")
	src, _ := perf.NewIntervalModel(perf.DefaultConfig(), prof)
	act := src.Step(0, workload.TimestepCycles)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var in power.Input
		in.CoreActivity[0] = act.Unit
		res := pm.Compute(in)
		if pm.PowerDensity(res, 0) < 4 {
			b.Fatal("density collapsed")
		}
	}
}

// BenchmarkSec4ATempScaling is the Section-4A end-to-end number the
// ROADMAP speedup targets quote: the same 15-step gcc co-simulation on
// the explicit stability-bounded solver and on the ADI fast solver
// (matched accuracy pinned by TestSolverAccuracyTable in
// internal/thermal).
func BenchmarkSec4ATempScaling(b *testing.B) {
	run := func(b *testing.B, solver thermal.Solver) {
		cfg := benchConfig(tech.Node7, "gcc", 15)
		cfg.Solver = solver
		for i := 0; i < b.N; i++ {
			benchRun(b, cfg)
		}
	}
	b.Run("explicit", func(b *testing.B) { run(b, nil) }) // default solver
	b.Run("adi", func(b *testing.B) { run(b, &thermal.ADI{}) })
}

// BenchmarkStackedRun measures the multi-die co-simulation end-to-end:
// two active planes, the DRAM power model driven by the core's memory
// traffic, and per-die series extraction — the stacked-scenario cost on
// top of the single-die baseline above.
func BenchmarkStackedRun(b *testing.B) {
	for _, preset := range sim.StackPresets() {
		b.Run(preset, func(b *testing.B) {
			cfg := benchConfig(tech.Node7, "gcc", 15)
			cfg.StackPreset = preset
			for i := 0; i < b.N; i++ {
				benchRun(b, cfg)
			}
		})
	}
}

// ---- Ablations (DESIGN.md §4) ----

func BenchmarkAblationSolvers(b *testing.B) {
	run := func(b *testing.B, solver thermal.Solver) {
		cfg := benchConfig(tech.Node7, "gcc", 8)
		cfg.Solver = solver
		for i := 0; i < b.N; i++ {
			benchRun(b, cfg)
		}
	}
	b.Run("explicit", func(b *testing.B) { run(b, &thermal.Explicit{}) })
	b.Run("implicit", func(b *testing.B) { run(b, &thermal.Implicit{}) })
	b.Run("adi", func(b *testing.B) { run(b, &thermal.ADI{}) })
}

func BenchmarkAblationPerfModels(b *testing.B) {
	prof, _ := workload.Lookup("gcc")
	b.Run("interval", func(b *testing.B) {
		m, err := perf.NewIntervalModel(perf.DefaultConfig(), prof)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			m.Step(i, workload.TimestepCycles)
		}
	})
	b.Run("cycle", func(b *testing.B) {
		m, err := perf.NewCycleModel(perf.DefaultConfig(), prof)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Step(i, 100_000) // 1/10 of a timestep per iteration
		}
	})
}

func BenchmarkAblationDetection(b *testing.B) {
	// A realistic frame from an actual run, analyzed with both detectors.
	cfg := benchConfig(tech.Node7, "namd", 10)
	cfg.Warmup = sim.WarmupIdle
	res, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	field := res.FinalField
	analyzer, err := core.NewAnalyzer(field, core.DefaultDefinition())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("candidates", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(analyzer.Detect(field)) == 0 {
				b.Fatal("no hotspots")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(analyzer.DetectNaive(field)) == 0 {
				b.Fatal("no hotspots")
			}
		}
	})
}

func BenchmarkAblationLeakage(b *testing.B) {
	b.Run("feedback", func(b *testing.B) {
		cfg := benchConfig(tech.Node7, "namd", 8)
		for i := 0; i < b.N; i++ {
			benchRun(b, cfg)
		}
	})
	b.Run("frozen", func(b *testing.B) {
		cfg := benchConfig(tech.Node7, "namd", 8)
		cfg.DisableLeakageFeedback = true
		for i := 0; i < b.N; i++ {
			benchRun(b, cfg)
		}
	})
}

func BenchmarkAblationResolution(b *testing.B) {
	for _, res := range []float64{0.1, 0.2} {
		b.Run(map[float64]string{0.1: "100um", 0.2: "200um"}[res], func(b *testing.B) {
			cfg := benchConfig(tech.Node7, "gcc", 8)
			cfg.Resolution = res
			for i := 0; i < b.N; i++ {
				benchRun(b, cfg)
			}
		})
	}
}

// ---- Kernel micro-benchmarks ----

func BenchmarkKernelThermalStep(b *testing.B) {
	fp := floorplan.MustNew(floorplan.Config{Node: tech.Node7})
	grid, err := thermal.NewGrid(fp.Die, 0.1, thermal.DefaultStack(), thermal.SinkConductance, 40)
	if err != nil {
		b.Fatal(err)
	}
	state := grid.NewState(40)
	pf := geometry.NewField(grid.NX, grid.NY, 0.1)
	pf.Rasterize(fp.CoreRects[0], 12)
	pw := thermal.NewPower(pf)
	var solver thermal.Explicit
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := solver.Step(grid, state, pw, sim.Timestep); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelADIStep times one full ADI timestep (adaptive
// substepping at default ErrTol) on the same grid and power map as
// BenchmarkKernelThermalStep, so the two names compare directly.
func BenchmarkKernelADIStep(b *testing.B) {
	fp := floorplan.MustNew(floorplan.Config{Node: tech.Node7})
	grid, err := thermal.NewGrid(fp.Die, 0.1, thermal.DefaultStack(), thermal.SinkConductance, 40)
	if err != nil {
		b.Fatal(err)
	}
	state := grid.NewState(40)
	pf := geometry.NewField(grid.NX, grid.NY, 0.1)
	pf.Rasterize(fp.CoreRects[0], 12)
	pw := thermal.NewPower(pf)
	var solver thermal.ADI
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := solver.Step(grid, state, pw, sim.Timestep); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelMLTDField(b *testing.B) {
	f := geometry.NewField(46, 31, 0.1)
	for i := range f.Data {
		f.Data[i] = 60 + 40*math.Sin(float64(i)/17)
	}
	analyzer, err := core.NewAnalyzer(f, core.DefaultDefinition())
	if err != nil {
		b.Fatal(err)
	}
	analyzer.MaxMLTD(f) // warm the scan's scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzer.MaxMLTD(f)
	}
}

func BenchmarkKernelCacheAccess(b *testing.B) {
	h, err := perf.NewHierarchy(perf.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	addr := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr = addr*1664525 + 1013904223
		h.Data(addr % (8 << 20))
	}
}

func BenchmarkKernelSeverityRMS(b *testing.B) {
	series := make([]float64, 1000)
	for i := range series {
		series[i] = core.Severity(60+float64(i%60), float64(i%40))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.RMS(series)
	}
}

// ---- Observability overhead (ISSUE 1 acceptance) ----

// BenchmarkObsOverhead measures the cost of full instrumentation on the
// sim.Run hot path. "baseline" runs with a nil registry (every metric
// call a nil-check no-op); "instrumented" records all stage timers and
// counters into a live registry. Compare with:
//
//	go test -bench=ObsOverhead -count=10 | benchstat
//
// The instrumented path must stay within 2% of baseline: per 200 µs
// timestep it adds ~6 timer spans (two clock reads each) and a handful
// of atomic adds against a multi-millisecond thermal solve.
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, reg *obs.Registry) {
		cfg := benchConfig(tech.Node7, "gcc", 8)
		cfg.Obs = reg
		for i := 0; i < b.N; i++ {
			benchRun(b, cfg)
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, nil) })
	b.Run("instrumented", func(b *testing.B) {
		reg := obs.NewRegistry()
		run(b, reg)
		if reg.Counter("sim/steps").Value() == 0 {
			b.Fatal("instrumentation did not record")
		}
	})
}

// BenchmarkObsCampaignOverhead is the same comparison across a parallel
// campaign sharing one registry between workers — the contended case.
func BenchmarkObsCampaignOverhead(b *testing.B) {
	cfgs := func() []sim.Config {
		var out []sim.Config
		for _, name := range []string{"gcc", "namd", "milc", "hmmer"} {
			out = append(out, benchConfig(tech.Node7, name, 6))
		}
		return out
	}
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.Campaign(cfgs()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		reg := obs.NewRegistry()
		for i := 0; i < b.N; i++ {
			if _, err := sim.CampaignOpts(cfgs(), sim.CampaignOptions{Obs: reg}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Registry micro-benchmarks: the per-event costs the <2% bound rests on.
func BenchmarkObsCounterAdd(b *testing.B) {
	c := obs.NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterAddNil(b *testing.B) {
	var c *obs.Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsTimerSpan(b *testing.B) {
	t := obs.NewRegistry().Timer("t")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Start().End()
	}
}

func BenchmarkObsTimerSpanNil(b *testing.B) {
	var t *obs.Timer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Start().End()
	}
}

// ---- Extension benchmarks ----

func BenchmarkExtensionDTMPolicy(b *testing.B) {
	cfg := benchConfig(tech.Node7, "namd", 10)
	cfg.Warmup = sim.WarmupIdle
	for i := 0; i < b.N; i++ {
		if _, err := mitigate.Evaluate(cfg, &mitigate.PIThrottle{Target: 90}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionCoolingVariant(b *testing.B) {
	cfg := benchConfig(tech.Node7, "namd", 8)
	cfg.Stack = thermal.LiquidCooledStack()
	cfg.SinkConductance = thermal.LiquidSinkConductance
	for i := 0; i < b.N; i++ {
		benchRun(b, cfg)
	}
}

func BenchmarkExtensionHotspotTracking(b *testing.B) {
	cfg := benchConfig(tech.Node7, "namd", 10)
	cfg.Warmup = sim.WarmupIdle
	cfg.Record.FieldEvery = 1
	res, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	analyzer, err := core.NewAnalyzer(res.Fields[0], core.DefaultDefinition())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := core.NewTracker(analyzer, 0.5)
		for j, f := range res.Fields {
			tr.Observe(res.FieldSteps[j], f)
		}
		if len(tr.Finish()) == 0 {
			b.Fatal("nothing tracked")
		}
	}
}

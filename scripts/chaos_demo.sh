#!/usr/bin/env bash
# chaos_demo.sh — the docs/OPERATIONS.md partition walkthrough,
# non-interactive.
#
# Builds cmd/hotgauged, starts a coordinator whose cluster RPCs ride a
# seeded chaos schedule (-chaos-profile/-chaos-seed) containing one
# one-way partition window coordinator→w2, plus three ordinary workers.
# Campaigns flow continuously while the window opens and heals, and the
# script asserts that:
#   * every campaign completes despite the cut,
#   * the breaker trips (cluster/breaker_trips) and the coordinator
#     routes around w2 WITHOUT declaring it dead — its heartbeats still
#     arrive, so a one-way cut must read as a dispatch fault, not death,
#   * the chaos transport actually refused traffic (chaos/partitioned),
#   * after the window heals, a half-open probe closes the breaker and
#     w2 returns to service (cluster/breaker_closes, /cluster/status),
#   * every run across the whole soak resolved exactly once
#     (cluster/results_received + cluster/local_runs).
#
# Requires: go, curl, jq. Exits nonzero on any failed assertion.
set -euo pipefail

BASE_PORT="${BASE_PORT:-18290}"
COORD="http://127.0.0.1:${BASE_PORT}"
WORKDIR="$(mktemp -d)"
BIN="${WORKDIR}/hotgauged"
PIDS=()

# The partition window, in milliseconds since the coordinator process
# started its chaos transport: opens after the first campaigns are
# already flowing, heals while the script is still submitting.
PART_START_MS=4000
PART_END_MS=12000
PROFILE="{\"partitions\":[{\"from\":\"coordinator\",\"to\":\"w2\",\"start_ms\":${PART_START_MS},\"end_ms\":${PART_END_MS},\"one_way\":true}]}"

cleanup() {
    for pid in "${PIDS[@]:-}"; do
        [ -n "${pid}" ] || continue
        kill "${pid}" 2>/dev/null || true
    done
    sleep 0.5
    for pid in "${PIDS[@]:-}"; do
        [ -n "${pid}" ] || continue
        kill -9 "${pid}" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "${WORKDIR}"
}
trap cleanup EXIT

fail() { echo "chaos-demo: FAIL: $*" >&2; exit 1; }

for off in 0 1 2 3; do
    port=$((BASE_PORT + off))
    if (exec 3<>"/dev/tcp/127.0.0.1/${port}") 2>/dev/null; then
        fail "port ${port} is already in use; stop it or set BASE_PORT=<free base>"
    fi
done

echo "chaos-demo: building hotgauged"
go build -o "${BIN}" ./cmd/hotgauged

wait_healthy() {
    local base=$1 pid=$2 log=$3
    for i in $(seq 1 50); do
        if curl -fsS "${base}/healthz" >/dev/null 2>&1; then return 0; fi
        kill -0 "${pid}" 2>/dev/null || { cat "${log}" >&2; fail "daemon on ${base} exited early"; }
        sleep 0.2
    done
    fail "daemon on ${base} never became healthy"
}

metric() {
    curl -fsS "${COORD}/metrics" | jq ".counters[\"$1\"] // 0"
}

echo "chaos-demo: starting coordinator on :${BASE_PORT} with a one-way w2 partition window [${PART_START_MS}ms, ${PART_END_MS}ms)"
COORD_START_MS="$(date +%s%3N)"
"${BIN}" -addr "127.0.0.1:${BASE_PORT}" -lease-ttl 1s -batch 2 \
    -chaos-profile "${PROFILE}" -chaos-seed 13 \
    >"${WORKDIR}/coord.log" 2>&1 &
PIDS+=($!)
wait_healthy "${COORD}" "${PIDS[0]}" "${WORKDIR}/coord.log"

for i in 1 2 3; do
    port=$((BASE_PORT + i))
    echo "chaos-demo: starting worker w${i} on :${port}"
    "${BIN}" -addr "127.0.0.1:${port}" -join "${COORD}" -worker "w${i}" \
        >"${WORKDIR}/w${i}.log" 2>&1 &
    PIDS+=($!)
done
for i in 1 2 3; do
    wait_healthy "http://127.0.0.1:$((BASE_PORT + i))" "${PIDS[$i]}" "${WORKDIR}/w${i}.log"
done

echo "chaos-demo: waiting for all three workers to register"
for i in $(seq 1 50); do
    alive="$(curl -fsS "${COORD}/cluster/status" | jq '[.workers[] | select(.alive)] | length')"
    [ "${alive}" = 3 ] && break
    sleep 0.2
done
[ "${alive}" = 3 ] || fail "only ${alive}/3 workers registered"

TOTAL=0

# submit_campaign N: one 4-run campaign with hashes nobody has seen
# before (steps advance every call), waited to completion.
CAMPAIGN_SEQ=0
submit_campaign() {
    local s=$((20 + 4 * CAMPAIGN_SEQ)) job_id state
    CAMPAIGN_SEQ=$((CAMPAIGN_SEQ + 1))
    local campaign="{\"configs\":[
      {\"workload\":\"gcc\",\"node\":7,\"steps\":${s},\"warmup\":\"cold\",\"resolution\":0.2},
      {\"workload\":\"gcc\",\"node\":10,\"steps\":$((s + 1)),\"warmup\":\"cold\",\"resolution\":0.2},
      {\"workload\":\"gcc\",\"node\":14,\"steps\":$((s + 2)),\"warmup\":\"cold\",\"resolution\":0.2},
      {\"workload\":\"gcc\",\"node\":7,\"steps\":$((s + 3)),\"warmup\":\"cold\",\"resolution\":0.2}
    ]}"
    job_id="$(curl -fsS -X POST "${COORD}/jobs" -d "${campaign}" | jq -r .id)"
    [ -n "${job_id}" ] && [ "${job_id}" != null ] || fail "submit returned no job id"
    for i in $(seq 1 300); do
        state="$(curl -fsS "${COORD}/jobs/${job_id}" | jq -r .state)"
        case "${state}" in
            done) TOTAL=$((TOTAL + 4)); return 0 ;;
            failed|cancelled) curl -fsS "${COORD}/jobs/${job_id}" >&2; fail "job ${job_id} ended ${state}" ;;
        esac
        sleep 0.2
    done
    fail "job ${job_id} did not finish (last state: ${state})"
}

# Phase 1: keep campaigns flowing while the window opens; every one must
# complete, and the accumulating refused pushes to w2 must trip the
# breaker. The streak only resets on a successful push, so the trip
# lands even when single campaigns hash little work onto w2.
echo "chaos-demo: campaigns flowing into the partition window"
DEADLINE_MS=$((COORD_START_MS + PART_END_MS - 2000))
while [ "$(metric cluster/breaker_trips)" = 0 ]; do
    [ "$(date +%s%3N)" -lt "${DEADLINE_MS}" ] \
        || fail "cluster/breaker_trips never rose inside the partition window"
    submit_campaign
done
echo "chaos-demo: breaker tripped after $((TOTAL / 4)) campaigns (all completed)"

[ "$(metric chaos/partitioned)" -ge 1 ] \
    || fail "chaos/partitioned = 0 though the breaker tripped"
curl -fsS "${COORD}/cluster/status" | jq -e '.workers[] | select(.name == "w2") | .alive' >/dev/null \
    || fail "w2 declared dead: a one-way cut must read as a dispatch fault, not death"

# Phase 2: outlive the window, then keep campaigns flowing until the
# cooldown half-opens the breaker, a probe push lands on the healed
# link, and the breaker closes.
NOW_MS="$(date +%s%3N)"
REST_MS=$((COORD_START_MS + PART_END_MS + 200 - NOW_MS))
if [ "${REST_MS}" -gt 0 ]; then
    echo "chaos-demo: waiting $((REST_MS / 1000)).$((REST_MS % 1000))s for the partition to heal"
    sleep "$(awk "BEGIN{print ${REST_MS}/1000}")"
fi
echo "chaos-demo: partition healed; campaigns flowing until the breaker closes"
DEADLINE_MS=$(($(date +%s%3N) + 20000))
while [ "$(metric cluster/breaker_closes)" = 0 ]; do
    [ "$(date +%s%3N)" -lt "${DEADLINE_MS}" ] \
        || fail "breaker never closed after the partition healed"
    submit_campaign
done
[ "$(metric cluster/breaker_half_opens)" -ge 1 ] \
    || fail "cluster/breaker_half_opens = 0 though the breaker closed"
BRK="$(curl -fsS "${COORD}/cluster/status" | jq -r '.workers[] | select(.name == "w2") | .breaker')"
[ "${BRK}" = closed ] || fail "w2 breaker reads '${BRK}' after the heal, want closed"

# Exactly-once across the whole soak: every submitted run resolved via
# exactly one accepted result (worker-posted or local fallback) —
# duplicates, fenced epochs and corrupt posts land in other counters.
RECEIVED="$(metric cluster/results_received)"
LOCAL="$(metric cluster/local_runs)"
[ $((RECEIVED + LOCAL)) = "${TOTAL}" ] \
    || fail "results_received+local_runs = $((RECEIVED + LOCAL)), want exactly ${TOTAL}"

echo "chaos-demo: OK (campaigns: $((CAMPAIGN_SEQ)), runs: ${TOTAL}, trips: $(metric cluster/breaker_trips), closes: $(metric cluster/breaker_closes), partitioned RPCs: $(metric chaos/partitioned))"

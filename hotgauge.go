// Package hotgauge is a from-scratch Go implementation of HotGauge
// (Hankin, Werner, et al., IISWC 2021): an end-to-end methodology for
// characterizing advanced thermal hotspots in modern and next-generation
// processors.
//
// The package is a stable facade over the internal simulation stack:
//
//   - a window-centric out-of-order performance model plus a fast
//     analytic interval model (internal/perf) driven by synthetic
//     SPEC CPU2006-like workload profiles (internal/workload);
//   - a McPAT-class per-unit power model with technology scaling and
//     temperature-dependent leakage (internal/power);
//   - a 3D-ICE-class transient finite-volume thermal solver for the
//     die/TIM/spreader/grease/heatsink stack (internal/thermal);
//   - a Skylake-like 7-core floorplan with 25 units per core
//     (internal/floorplan);
//   - and the paper's contribution: the formal hotspot definition, MLTD,
//     candidate-based detection and the severity metric (internal/core),
//     wired together by the co-simulation driver (internal/sim).
//
// Quick start:
//
//	prof, _ := hotgauge.LookupWorkload("gcc")
//	res, err := hotgauge.Run(hotgauge.Config{
//		Floorplan: hotgauge.FloorplanConfig{Node: hotgauge.Node7},
//		Workload:  prof,
//		Warmup:    hotgauge.WarmupIdle,
//		Steps:     100, // 100 × 200 µs = 20 ms
//	})
//	if err != nil { ... }
//	fmt.Printf("first hotspot after %.2f ms\n", res.TUH*1e3)
package hotgauge

import (
	"hotgauge/internal/core"
	"hotgauge/internal/floorplan"
	"hotgauge/internal/geometry"
	"hotgauge/internal/mitigate"
	"hotgauge/internal/obs"
	"hotgauge/internal/sim"
	"hotgauge/internal/tech"
	"hotgauge/internal/thermal"
	"hotgauge/internal/workload"
)

// Core simulation types.
type (
	// Config describes one co-simulation run; see sim.Config.
	Config = sim.Config
	// Result carries every recorded series of a run; see sim.Result.
	Result = sim.Result
	// RecordOptions selects optional per-step recordings.
	RecordOptions = sim.RecordOptions
	// WarmupMode selects the initial thermal state.
	WarmupMode = sim.WarmupMode

	// FloorplanConfig selects node and mitigation floorplan variants.
	FloorplanConfig = floorplan.Config
	// Floorplan is a fully placed die.
	Floorplan = floorplan.Floorplan
	// UnitKind identifies a functional-unit type.
	UnitKind = floorplan.Kind

	// Workload is a synthetic benchmark profile.
	Workload = workload.Profile
	// Node is a process technology node.
	Node = tech.Node

	// HotspotDefinition parameterizes Definition 1 of the paper.
	HotspotDefinition = core.Definition
	// Hotspot is one detected hotspot.
	Hotspot = core.Hotspot
	// Analyzer performs MLTD/severity/detection analysis on frames.
	Analyzer = core.Analyzer
	// Field is a 2-D junction-temperature (or power) map.
	Field = geometry.Field
)

// Warmup modes.
const (
	WarmupCold = sim.WarmupCold
	WarmupIdle = sim.WarmupIdle
)

// Case-study technology nodes.
const (
	Node14 = tech.Node14
	Node10 = tech.Node10
	Node7  = tech.Node7
)

// Timestep is the simulation timestep: 1 M cycles at 5 GHz = 200 µs.
const Timestep = sim.Timestep

// Run executes one perf-power-therm co-simulation.
func Run(cfg Config) (*Result, error) { return sim.Run(cfg) }

// RunAll executes a batch of configurations in parallel across CPUs,
// preserving order. Independent runs continue past failures; the
// returned error joins every per-run error.
func RunAll(cfgs []Config) ([]*Result, error) { return sim.Campaign(cfgs) }

// RunAllOpts is RunAll with worker, observability and progress controls.
func RunAllOpts(cfgs []Config, opts CampaignOptions) ([]*Result, error) {
	return sim.CampaignOpts(cfgs, opts)
}

// ---- Observability ----

// Observability types; see internal/obs and internal/sim for the metric
// names recorded by Run.
type (
	// Metrics is a registry of counters, gauges, timers and histograms.
	// Set Config.Obs to record a run's per-stage wall time and counters;
	// share one registry across RunAll workers to aggregate a campaign.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time, JSON-serializable registry copy.
	MetricsSnapshot = obs.Snapshot
	// CampaignOptions tunes RunAllOpts: worker cap, shared metrics
	// registry, and a per-run-completion progress callback.
	CampaignOptions = sim.CampaignOptions
	// CampaignProgress is the live progress (runs completed/total, ETA)
	// delivered to CampaignOptions.OnProgress.
	CampaignProgress = sim.Progress
)

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// SPEC2006 returns the 29 synthetic SPEC CPU2006 workload profiles of the
// case study.
func SPEC2006() []Workload { return workload.SPEC2006() }

// LookupWorkload finds a suite profile by name ("gcc", "namd", ...,
// plus "idle" and "avxstress").
func LookupWorkload(name string) (Workload, error) { return workload.Lookup(name) }

// NewFloorplan builds the 7-core case-study floorplan.
func NewFloorplan(cfg FloorplanConfig) (*Floorplan, error) { return floorplan.New(cfg) }

// DefaultHotspotDefinition returns the case-study hotspot thresholds:
// 80 °C, 25 °C MLTD, 1 mm radius.
func DefaultHotspotDefinition() HotspotDefinition { return core.DefaultDefinition() }

// NewAnalyzer builds a hotspot analyzer for frames shaped like proto.
func NewAnalyzer(proto *Field, def HotspotDefinition) (*Analyzer, error) {
	return core.NewAnalyzer(proto, def)
}

// Severity evaluates the Equation 2 hotspot severity metric for a
// temperature [°C] and an MLTD [°C]; see Fig. 7 of the paper.
func Severity(temp, mltd float64) float64 { return core.Severity(temp, mltd) }

// Psi computes the junction-to-ambient thermal resistance [°C/W] of the
// default cooling stack for a die outline (Table IV).
func Psi(die geometry.Rect, resolutionMM float64) (float64, error) {
	return thermal.Psi(die, resolutionMM)
}

// ---- Dynamic thermal management (DTM) ----

// DTM types: sensor arrays, policies, and evaluation outcomes; see
// internal/mitigate for the full documentation.
type (
	// Policy decides per-timestep throttle/migration from sensor readings.
	Policy = mitigate.Policy
	// DTMOutcome scores a policy run: thermal quality vs performance cost.
	DTMOutcome = mitigate.Outcome
	// SensorArray is a set of on-die thermal sensors with latency.
	SensorArray = mitigate.Array
	// ThresholdThrottle is reactive DVFS with hysteresis.
	ThresholdThrottle = mitigate.ThresholdThrottle
	// PIThrottle is a proportional-integral speed controller.
	PIThrottle = mitigate.PIThrottle
	// MigrateCoolest moves the workload to the coolest core when hot.
	MigrateCoolest = mitigate.MigrateCoolest
	// CombinedPolicy composes a migration and a throttle policy.
	CombinedPolicy = mitigate.Combined
	// NoOpPolicy never intervenes (the uncontrolled baseline).
	NoOpPolicy = mitigate.NoOp
)

// EvaluatePolicy runs cfg under the policy (sensors at the fpIWin of each
// core, 400 µs latency) and scores the outcome.
func EvaluatePolicy(cfg Config, p Policy) (*DTMOutcome, error) { return mitigate.Evaluate(cfg, p) }

// ComparePolicies evaluates several policies on the same configuration.
func ComparePolicies(cfg Config, ps ...Policy) ([]*DTMOutcome, error) {
	return mitigate.Compare(cfg, ps...)
}

// ---- Hotspot tracking ----

// Tracking types; see internal/core.
type (
	// Tracker associates hotspot detections across frames into lifetimes.
	Tracker = core.Tracker
	// TrackedHotspot is one hotspot's life: duration, peak, travel.
	TrackedHotspot = core.TrackedHotspot
)

// NewTracker builds a hotspot tracker over an analyzer; matchRadius [mm]
// bounds how far a hotspot may move between frames (0 = 0.5 mm).
func NewTracker(a *Analyzer, matchRadius float64) *Tracker {
	return core.NewTracker(a, matchRadius)
}

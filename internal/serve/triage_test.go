package serve

import (
	"strings"
	"testing"

	"hotgauge/internal/obs"
	"hotgauge/internal/sim"
)

// ambientPredictor is a deterministic fake surrogate keyed off the
// config's ambient temperature: cool ambients predict confidently cold
// (triage skips them), hot ambients predict on the severity frontier
// (triage verifies them exactly).
type ambientPredictor struct{}

func (ambientPredictor) Predict(cfg sim.Config) (sim.Prediction, error) {
	if cfg.Ambient > 45 {
		return sim.Prediction{Severity: 0.9, TUHSeconds: 0.5, Confidence: 0.95}, nil
	}
	return sim.Prediction{Severity: 0.1, TUHSeconds: -1, Confidence: 0.95}, nil
}

// triageSpec is tinySpec plus an explicit ambient (the predictor's key)
// and a recorded severity series so predicted and exact payloads are
// distinguishable.
func triageSpec(ambient float64) ConfigSpec {
	s := tinySpec(7, 2)
	s.Ambient = ambient
	s.RecordSeverity = true
	return s
}

// TestSubmitFoldsSurrogateIntoSpecs checks the hashing contract of a
// surrogate-holding daemon: specs that leave surrogate unset are opted
// into triage (with the daemon's knobs) before hashing, while an
// explicit surrogate:false spec keeps the exact content address a plain
// daemon would compute.
func TestSubmitFoldsSurrogateIntoSpecs(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Options{
		Registry:   reg,
		Surrogate:  ambientPredictor{},
		TriageBand: 0.2,
		AuditFrac:  1e-9, // effectively never audit: decisions stay deterministic
	})
	off := false
	pinned := triageSpec(41)
	pinned.Surrogate = &off
	job := submit(t, ts, triageSpec(41), pinned)
	waitState(t, ts, job.ID, JobDone)

	var folded, exact RunView
	getJSON(t, ts, "/jobs/"+job.ID+"/results/0", &folded)
	getJSON(t, ts, "/jobs/"+job.ID+"/results/1", &exact)
	if folded.Spec.Surrogate == nil || !*folded.Spec.Surrogate {
		t.Fatalf("unset spec not folded into triage: %+v", folded.Spec)
	}
	if folded.Spec.TriageBand != 0.2 {
		t.Fatalf("daemon triage band not folded: got %g", folded.Spec.TriageBand)
	}
	// The triage knobs are part of the content address: a predicted-only
	// payload can never shadow an exact result's cache entry.
	plainCfg, err := triageSpec(41).Config()
	if err != nil {
		t.Fatal(err)
	}
	plainHash, err := plainCfg.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if folded.ConfigHash == plainHash {
		t.Fatal("surrogate-folded config hashed to the plain exact address")
	}
	// surrogate:false pins exact execution at the plain address.
	if exact.ConfigHash != plainHash {
		t.Fatalf("surrogate:false hash = %s, want plain %s", exact.ConfigHash, plainHash)
	}
	if exact.Predicted || len(exact.Severity) == 0 {
		t.Fatalf("surrogate:false run was not simulated exactly: %+v", exact)
	}
}

// TestTriagePredictedAndExactRuns is the predict-first campaign round
// trip through the daemon: a confidently-cold run resolves predicted-only
// (no severity series, predicted_* fields, "predicted" run state) while a
// frontier run simulates exactly, and status, events, metrics and
// /report all tell the two apart.
func TestTriagePredictedAndExactRuns(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Options{
		Registry:  reg,
		Surrogate: ambientPredictor{},
		AuditFrac: 1e-9,
	})
	job := submit(t, ts, triageSpec(41), triageSpec(60))
	events := streamEvents(t, ts, job.ID)

	var st JobStatus
	getJSON(t, ts, "/jobs/"+job.ID, &st)
	if st.State != JobDone || st.Completed != 2 || st.Failed != 0 {
		t.Fatalf("status %+v, want done 2/2", st)
	}
	if st.Predicted != 1 {
		t.Fatalf("status.Predicted = %d, want 1", st.Predicted)
	}
	if st.Runs[0].State != RunPredicted {
		t.Fatalf("run 0 state %q, want %q", st.Runs[0].State, RunPredicted)
	}
	if st.Runs[1].State != RunDone {
		t.Fatalf("run 1 state %q, want %q", st.Runs[1].State, RunDone)
	}

	var cold, hot RunView
	getJSON(t, ts, "/jobs/"+job.ID+"/results/0", &cold)
	getJSON(t, ts, "/jobs/"+job.ID+"/results/1", &hot)
	if !cold.Predicted || cold.PredictedSeverity != 0.1 || cold.PredictedConfidence != 0.95 {
		t.Fatalf("predicted payload %+v, want predicted sev=0.1 conf=0.95", cold)
	}
	if len(cold.Severity) != 0 || cold.TUHSeconds != nil {
		t.Fatal("predicted-only payload carries exact-sim series")
	}
	if hot.Predicted || hot.PredictedSeverity != 0 || len(hot.Severity) == 0 {
		t.Fatalf("exact payload %+v, want simulated series and no predicted fields", hot)
	}

	final := events[len(events)-1]
	if final.Predicted != 1 {
		t.Fatalf("final event predicted = %d, want 1", final.Predicted)
	}

	snap := reg.Snapshot()
	for metric, want := range map[string]int64{
		MetricRunsPredicted:            1,
		sim.MetricSurrogateSkippedRuns: 1,
		sim.MetricSurrogateExactRuns:   1,
		sim.MetricSurrogatePredictions: 2,
	} {
		if got := snap.Counters[metric]; got != want {
			t.Errorf("%s = %d, want %d", metric, got, want)
		}
	}

	rep := string(getBody(t, ts, "/jobs/"+job.ID+"/report"))
	if !strings.Contains(rep, "~") {
		t.Fatalf("report does not mark predicted rows with ~:\n%s", rep)
	}
	if !strings.Contains(rep, "surrogate: 1 predicted-only (~), 1 exact") {
		t.Fatalf("report missing surrogate footer:\n%s", rep)
	}
}

// TestTriageAuditMeasuresPredictionError forces every skippable run
// through the audit path (audit fraction 1) and checks the daemon scores
// predicted-vs-exact severity error: the run simulates exactly, the
// audit counters move, and /report exposes the MAE.
func TestTriageAuditMeasuresPredictionError(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Options{
		Registry:  reg,
		Surrogate: ambientPredictor{},
		AuditFrac: 1, // audit draw u ∈ [0,1) < 1 always: every skippable run verifies
	})
	job := submit(t, ts, triageSpec(41))
	waitState(t, ts, job.ID, JobDone)

	var st JobStatus
	getJSON(t, ts, "/jobs/"+job.ID, &st)
	if st.Predicted != 0 || st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("status %+v, want one exact (audited) run", st)
	}
	var v RunView
	getJSON(t, ts, "/jobs/"+job.ID+"/results/0", &v)
	if v.Predicted || len(v.Severity) == 0 {
		t.Fatalf("audited run payload %+v, want exact series", v)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[sim.MetricSurrogateAuditRuns]; got != 1 {
		t.Fatalf("%s = %d, want 1", sim.MetricSurrogateAuditRuns, got)
	}
	if _, ok := snap.Gauges[sim.MetricSurrogateAuditError]; !ok {
		t.Fatalf("%s gauge not recorded", sim.MetricSurrogateAuditError)
	}
	rep := string(getBody(t, ts, "/jobs/"+job.ID+"/report"))
	if !strings.Contains(rep, "audit 1 runs, predicted-vs-exact severity MAE") {
		t.Fatalf("report missing audit MAE line:\n%s", rep)
	}
}

// TestTriageDurableRestartRestoresPredictedRuns checks the journal round
// trip for the predicted run state: a predicted-only run journaled by one
// process is restored — still marked predicted, payload intact — by a
// fresh process on the same data dir, even one holding no model.
func TestTriageDurableRestartRestoresPredictedRuns(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Options{
		DataDir:   dir,
		Fsync:     "always",
		Surrogate: ambientPredictor{},
		AuditFrac: 1e-9,
	})
	job := submit(t, ts1, triageSpec(41))
	waitState(t, ts1, job.ID, JobDone)
	var want RunView
	getJSON(t, ts1, "/jobs/"+job.ID+"/results/0", &want)
	if !want.Predicted {
		t.Fatalf("run not predicted-only before restart: %+v", want)
	}
	ts1.Close()
	shutdownNow(t, s1)

	_, ts2 := newTestServer(t, Options{DataDir: dir})
	var st JobStatus
	getJSON(t, ts2, "/jobs/"+job.ID, &st)
	if st.State != JobDone || st.Predicted != 1 || !st.Recovered {
		t.Fatalf("restored status %+v, want recovered done with 1 predicted", st)
	}
	if st.Runs[0].State != RunPredicted {
		t.Fatalf("restored run state %q, want %q", st.Runs[0].State, RunPredicted)
	}
	var got RunView
	getJSON(t, ts2, "/jobs/"+job.ID+"/results/0", &got)
	if !got.Predicted || got.PredictedSeverity != want.PredictedSeverity {
		t.Fatalf("restored predicted payload %+v, want %+v", got, want)
	}
}

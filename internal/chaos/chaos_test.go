package chaos

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"hotgauge/internal/obs"
)

func TestParseProfilePresetsAndInline(t *testing.T) {
	for name := range Presets() {
		p, err := ParseProfile(name)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if p.Zero() {
			t.Fatalf("preset %q parsed to a zero profile", name)
		}
	}
	p, err := ParseProfile(`{"drop_rate": 0.5, "latency_ms": 3}`)
	if err != nil {
		t.Fatalf("inline: %v", err)
	}
	if p.DropRate != 0.5 || p.LatencyMS != 3 {
		t.Fatalf("inline parsed wrong: %+v", p)
	}
	if _, err := ParseProfile(""); err != nil {
		t.Fatalf("empty profile should parse: %v", err)
	}
	if _, err := ParseProfile("no-such-preset"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := ParseProfile(`{"drop_rate": 1.5}`); err == nil {
		t.Fatal("out-of-range rate accepted")
	}
	if _, err := ParseProfile(`{"partitions":[{"from":"a","to":"b","start_ms":10,"end_ms":5}]}`); err == nil {
		t.Fatal("inverted partition window accepted")
	}
}

func TestParseProfileFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")
	if err := os.WriteFile(path, []byte(`{"name":"disk","dup_rate":0.25}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := ParseProfile("@" + path)
	if err != nil {
		t.Fatalf("@file: %v", err)
	}
	if p.Name != "disk" || p.DupRate != 0.25 {
		t.Fatalf("@file parsed wrong: %+v", p)
	}
}

// TestTransportDeterministic replays the same profile + seed against
// the same request sequence and expects bit-identical fault decisions.
func TestTransportDeterministic(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	run := func() (int64, int64, int64) {
		reg := obs.NewRegistry()
		tr := New(Options{Self: "a", Seed: 42, Registry: reg,
			Profile: Profile{DropRate: 0.3, DupRate: 0.2, ResponseDropRate: 0.1}})
		client := &http.Client{Transport: tr}
		for i := 0; i < 50; i++ {
			resp, err := client.Post(ts.URL, "application/json", bytes.NewReader([]byte(`{"i":1}`)))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return reg.Counter(MetricDroppedRequests).Value(),
			reg.Counter(MetricDuplicated).Value(),
			reg.Counter(MetricDroppedResponses).Value()
	}
	d1, u1, r1 := run()
	d2, u2, r2 := run()
	if d1 != d2 || u1 != u2 || r1 != r2 {
		t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", d1, u1, r1, d2, u2, r2)
	}
	if d1 == 0 || u1 == 0 || r1 == 0 {
		t.Fatalf("expected some of every fault over 50 requests, got drops=%d dups=%d respdrops=%d", d1, u1, r1)
	}
}

// TestPartitionWindow drives a one-way partition window with a fake
// clock: closed before start, cut inside the window (only from→to),
// healed after end.
func TestPartitionWindow(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	newT := func(self string) *Transport {
		tr := New(Options{Self: self, Seed: 1, Clock: clock, Profile: Profile{
			Partitions: []Partition{{From: "coordinator", To: "worker-1", StartMS: 100, EndMS: 300, OneWay: true}},
		}})
		tr.AddPeer("worker-1", ts.URL)
		return tr
	}
	get := func(tr *Transport) error {
		req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
		resp, err := tr.RoundTrip(req)
		if err == nil {
			resp.Body.Close()
		}
		return err
	}

	coord := newT("coordinator")
	other := newT("worker-2")
	if err := get(coord); err != nil {
		t.Fatalf("before window: %v", err)
	}
	now = now.Add(150 * time.Millisecond)
	if err := get(coord); err == nil {
		t.Fatal("inside window: coordinator → worker-1 not cut")
	}
	if err := get(other); err != nil {
		t.Fatalf("inside window: unrelated pair cut: %v", err)
	}
	now = now.Add(200 * time.Millisecond) // past EndMS
	if err := get(coord); err != nil {
		t.Fatalf("after window (healed): %v", err)
	}
	if got := coord.mPartitioned.Value(); got != 1 {
		t.Fatalf("partitioned count = %d, want 1", got)
	}
}

// TestSymmetricPartition checks that a non-OneWay window cuts both
// directions from a single rule.
func TestSymmetricPartition(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	tr := New(Options{Self: "worker-1", Seed: 1, Profile: Profile{
		Partitions: []Partition{{From: "coordinator", To: "worker-1", StartMS: 0}},
	}})
	tr.AddPeer("coordinator", ts.URL)
	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	if _, err := tr.RoundTrip(req); err == nil {
		t.Fatal("reverse direction of a symmetric partition not cut")
	}
}

// TestCorruptAndTruncateMutateBody checks the body mutations actually
// reach the server changed, while the sender's copy of the request is
// untouched.
func TestCorruptAndTruncateMutateBody(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		got.Store(string(b))
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	orig := `{"payload":"0123456789abcdef"}`
	tr := New(Options{Self: "a", Seed: 3, Profile: Profile{CorruptRate: 1}})
	client := &http.Client{Transport: tr}
	resp, err := client.Post(ts.URL, "application/json", bytes.NewReader([]byte(orig)))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if got.Load().(string) == orig {
		t.Fatal("corrupt_rate=1 delivered an unmodified body")
	}

	tr2 := New(Options{Self: "a", Seed: 3, Profile: Profile{TruncateRate: 1}})
	client2 := &http.Client{Transport: tr2}
	resp2, err := client2.Post(ts.URL, "application/json", bytes.NewReader([]byte(orig)))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp2.Body.Close()
	if s := got.Load().(string); len(s) >= len(orig) {
		t.Fatalf("truncate_rate=1 delivered %d bytes, want fewer than %d", len(s), len(orig))
	}
}

// TestDuplicateDelivery checks dup_rate=1 delivers every request twice.
func TestDuplicateDelivery(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	tr := New(Options{Self: "a", Seed: 9, Profile: Profile{DupRate: 1}})
	client := &http.Client{Transport: tr}
	for i := 0; i < 3; i++ {
		resp, err := client.Post(ts.URL, "application/json", bytes.NewReader([]byte(`{}`)))
		if err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
		resp.Body.Close()
	}
	if got := hits.Load(); got != 6 {
		t.Fatalf("server saw %d deliveries of 3 requests, want 6", got)
	}
}

// Command benchjson converts `go test -bench` output into a small JSON
// summary for machine consumption (regression dashboards, the repo's
// BENCH_thermal.json artifact). Repeated samples of one benchmark — the
// `-count=N` runs benchstat wants — are aggregated into mean and min,
// and the summary is stamped with provenance metadata: the git commit,
// the benchmark grid's cell count and the solver vocabulary the numbers
// cover.
//
// Usage:
//
//	go test -run=NONE -bench=Kernel -benchmem -count=10 . | benchjson -out BENCH_thermal.json
//	benchjson bench-output.txt
//	benchjson -compare -threshold 50 BENCH_thermal.json candidate.json
//
// With no -out the JSON goes to stdout; file arguments are read instead
// of stdin when given. -compare takes a baseline and a candidate
// summary (either the current object form or the legacy bare-array
// form) and exits non-zero when a benchmark present in both regressed —
// best-sample ns/op slower than the baseline by more than -threshold
// percent, or allocations appearing in a previously allocation-free
// benchmark.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"hotgauge/internal/floorplan"
	"hotgauge/internal/sim"
	"hotgauge/internal/tech"
	"hotgauge/internal/thermal"
)

// benchLine matches one result line, e.g.
//
//	BenchmarkKernelThermalStep-8  520  2201453 ns/op  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

var (
	bytesRE  = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsRE = regexp.MustCompile(`([0-9.]+) allocs/op`)
)

// Result is the aggregated summary of one benchmark across samples.
type Result struct {
	Name        string  `json:"name"`
	Samples     int     `json:"samples"`
	NsPerOp     float64 `json:"ns_per_op"`     // mean across samples
	MinNsPerOp  float64 `json:"min_ns_per_op"` // best sample
	BytesPerOp  float64 `json:"bytes_per_op"`  // mean; -1 without -benchmem
	AllocsPerOp float64 `json:"allocs_per_op"` // mean; -1 without -benchmem
}

// Meta records where a summary's numbers came from.
type Meta struct {
	// GitSHA is the commit the benchmarks ran at ("unknown" outside a
	// git checkout).
	GitSHA string `json:"git_sha"`
	// GridCells is the thermal cell count of the benchmark grid (the
	// Node-7 die at 0.1 mm pitch) — the N the per-step kernel numbers
	// scale with.
	GridCells int `json:"grid_cells"`
	// Solvers is the stock solver vocabulary the suite covers.
	Solvers []string `json:"solvers"`
	// Stacks is the stacked-scenario preset vocabulary the stacked
	// benchmarks cover (empty in pre-stacking baselines).
	Stacks []string `json:"stacks,omitempty"`
}

// Summary is the JSON artifact: provenance plus per-benchmark numbers.
// The legacy form (PR 4) was the bare benchmark array; loadSummary
// still reads it so old baselines stay comparable.
type Summary struct {
	Meta       Meta     `json:"meta"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	compare := flag.Bool("compare", false, "compare two summaries (baseline candidate) and exit 1 on regression")
	threshold := flag.Float64("threshold", 30, "regression threshold for -compare: percent slowdown of the best ns/op sample")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare wants exactly two files: baseline candidate"))
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *threshold); err != nil {
			fatal(err)
		}
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		var readers []io.Reader
		for _, name := range flag.Args() {
			f, err := os.Open(name)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}

	results, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found"))
	}

	buf, err := json.MarshalIndent(Summary{Meta: meta(), Benchmarks: results}, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}

// meta stamps the summary's provenance. A missing git binary or a
// non-checkout working directory degrades to "unknown" rather than
// failing: the numbers are still worth writing.
func meta() Meta {
	sha := "unknown"
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		if s := strings.TrimSpace(string(out)); s != "" {
			sha = s
		}
	}
	cells := 0
	if fp, err := floorplan.New(floorplan.Config{Node: tech.Node7}); err == nil {
		if g, err := thermal.NewGrid(fp.Die, 0.1, thermal.DefaultStack(), thermal.SinkConductance, thermal.DefaultAmbient); err == nil {
			cells = g.NX * g.NY * g.NL
		}
	}
	return Meta{GitSHA: sha, GridCells: cells, Solvers: []string{"explicit", "implicit", "adi"}, Stacks: sim.StackPresets()}
}

// loadSummary reads either the current object form or the legacy bare
// benchmark array.
func loadSummary(path string) (Summary, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Summary{}, err
	}
	trimmed := bytes.TrimLeft(buf, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var s Summary
		if err := json.Unmarshal(buf, &s.Benchmarks); err != nil {
			return Summary{}, fmt.Errorf("%s: %w", path, err)
		}
		return s, nil
	}
	var s Summary
	if err := json.Unmarshal(buf, &s); err != nil {
		return Summary{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// runCompare reports per-benchmark deltas of candidate vs baseline and
// errors on regressions. It compares best samples, not means: on a
// shared/noisy machine the minimum is the least contended observation,
// so it moves far less run-to-run than the mean does.
func runCompare(basePath, candPath string, threshold float64) error {
	base, err := loadSummary(basePath)
	if err != nil {
		return err
	}
	cand, err := loadSummary(candPath)
	if err != nil {
		return err
	}
	baseline := map[string]Result{}
	for _, r := range base.Benchmarks {
		baseline[r.Name] = r
	}
	var regressions []string
	compared := 0
	for _, c := range cand.Benchmarks {
		b, ok := baseline[c.Name]
		if !ok || b.MinNsPerOp <= 0 {
			continue
		}
		compared++
		pct := (c.MinNsPerOp/b.MinNsPerOp - 1) * 100
		fmt.Printf("%-60s %12.0f -> %12.0f ns/op  %+6.1f%%\n", c.Name, b.MinNsPerOp, c.MinNsPerOp, pct)
		if pct > threshold {
			regressions = append(regressions,
				fmt.Sprintf("%s: min ns/op %+.1f%% (threshold %g%%)", c.Name, pct, threshold))
		}
		// Allocation counts are deterministic, so any growth from a
		// zero-alloc baseline is a real regression, noise-free.
		if b.AllocsPerOp == 0 && c.AllocsPerOp > 0 {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f allocs/op, baseline had none", c.Name, c.AllocsPerOp))
		}
	}
	if compared == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", basePath, candPath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Printf("benchjson: %d benchmarks within %g%% of baseline %s\n", compared, threshold, basePath)
	return nil
}

func parse(in io.Reader) ([]Result, error) {
	agg := map[string]*Result{}
	var order []string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		bytesOp, allocsOp := -1.0, -1.0
		if bm := bytesRE.FindStringSubmatch(m[4]); bm != nil {
			bytesOp, _ = strconv.ParseFloat(bm[1], 64)
		}
		if am := allocsRE.FindStringSubmatch(m[4]); am != nil {
			allocsOp, _ = strconv.ParseFloat(am[1], 64)
		}
		r, ok := agg[name]
		if !ok {
			r = &Result{Name: name, MinNsPerOp: ns}
			agg[name] = r
			order = append(order, name)
		}
		if ns < r.MinNsPerOp {
			r.MinNsPerOp = ns
		}
		// Running means keep the JSON numbers stable whatever -count is.
		n := float64(r.Samples)
		r.NsPerOp = (r.NsPerOp*n + ns) / (n + 1)
		r.BytesPerOp = (r.BytesPerOp*n + bytesOp) / (n + 1)
		r.AllocsPerOp = (r.AllocsPerOp*n + allocsOp) / (n + 1)
		r.Samples++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(order)
	results := make([]Result, 0, len(agg))
	for _, name := range order {
		results = append(results, *agg[name])
	}
	return results, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hotgauge/internal/obs"
	"hotgauge/internal/sim"
)

// newCoordServer mounts a coordinator's control plane on an httptest
// server, torn down with the test.
func newCoordServer(t *testing.T, opts CoordinatorOptions) (*Coordinator, *httptest.Server) {
	t.Helper()
	c := NewCoordinator(opts)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/join", c.HandleJoin)
	mux.HandleFunc("POST /cluster/heartbeat", c.HandleHeartbeat)
	mux.HandleFunc("POST /cluster/results", c.HandleResults)
	mux.HandleFunc("GET /cluster/status", c.HandleStatus)
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		c.Close()
	})
	return c, srv
}

// newTestWorker starts a worker daemon stub: an httptest server whose
// only route is the batch intake, joined to the coordinator.
func newTestWorker(t *testing.T, coordURL, name string, exec Executor) *Worker {
	t.Helper()
	var w *Worker
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/batch", func(rw http.ResponseWriter, r *http.Request) {
		w.HandleBatch(rw, r)
	})
	srv := httptest.NewServer(mux)
	w, err := NewWorker(WorkerOptions{
		Name:        name,
		Coordinator: coordURL,
		SelfURL:     srv.URL,
		Exec:        exec,
		JoinTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		w.Stop()
		srv.Close()
	})
	return w
}

// makeRuns fabricates n runs with distinct hashes for one job.
func makeRuns(job string, n int) []sim.RemoteRun {
	runs := make([]sim.RemoteRun, n)
	for i := range runs {
		runs[i] = sim.RemoteRun{
			Job:   job,
			Index: i,
			Hash:  fmt.Sprintf("hash-%s-%04d", job, i),
			Spec:  json.RawMessage(`{}`),
		}
	}
	return runs
}

// gather runs Execute and collects every resolution, keyed by index.
func gather(t *testing.T, c *Coordinator, ctx context.Context, runs []sim.RemoteRun) (map[int][]byte, map[int]error, error) {
	t.Helper()
	var mu sync.Mutex
	payloads := map[int][]byte{}
	errs := map[int]error{}
	err := c.Execute(ctx, runs, func(k int, payload []byte, rerr error) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := payloads[k]; dup {
			t.Errorf("run %d resolved twice", k)
		}
		if _, dup := errs[k]; dup {
			t.Errorf("run %d resolved twice (error)", k)
		}
		if rerr != nil {
			errs[k] = rerr
		} else {
			payloads[k] = payload
		}
	})
	return payloads, errs, err
}

// echoExec is a stub executor whose payload (a JSON string — payloads
// ride json.RawMessage on the wire) names the worker and run, recording
// per-key execution counts to prove exactly-once execution within a
// worker set that never dies.
func echoExec(name string, counts *sync.Map) Executor {
	return func(ctx context.Context, run sim.RemoteRun) ([]byte, error) {
		n, _ := counts.LoadOrStore(run.Key(), new(int))
		*(n.(*int))++
		return []byte(strconv.Quote(name + ":" + run.Key())), nil
	}
}

// unquote decodes an echoExec payload back to worker:key form.
func unquote(t *testing.T, payload []byte) string {
	t.Helper()
	s, err := strconv.Unquote(string(payload))
	if err != nil {
		t.Fatalf("payload %q is not a JSON string: %v", payload, err)
	}
	return s
}

func counter(reg *obs.Registry, name string) int {
	return int(reg.Snapshot().Counters[name])
}

// TestCoordinatorFanout pushes a campaign through three healthy workers
// and checks every run resolves exactly once, with the work actually
// spread across the fleet.
func TestCoordinatorFanout(t *testing.T) {
	reg := obs.NewRegistry()
	c, srv := newCoordServer(t, CoordinatorOptions{
		LeaseTTL: 500 * time.Millisecond,
		Batch:    3,
		Registry: reg,
	})
	var counts sync.Map
	for i := 0; i < 3; i++ {
		newTestWorker(t, srv.URL, fmt.Sprintf("w%d", i), echoExec(fmt.Sprintf("w%d", i), &counts))
	}
	if n := c.AliveWorkers(); n != 3 {
		t.Fatalf("AliveWorkers = %d, want 3", n)
	}

	runs := makeRuns("job-1", 24)
	payloads, errs, err := gather(t, c, context.Background(), runs)
	if err != nil || len(errs) != 0 {
		t.Fatalf("Execute err=%v, run errors=%v", err, errs)
	}
	if len(payloads) != len(runs) {
		t.Fatalf("resolved %d of %d runs", len(payloads), len(runs))
	}
	seen := map[string]bool{}
	for k, p := range payloads {
		worker, key, ok := strings.Cut(unquote(t, p), ":")
		if !ok || key != runs[k].Key() {
			t.Fatalf("run %d payload %q does not name its key %q", k, p, runs[k].Key())
		}
		seen[worker] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all runs landed on one worker: %v", seen)
	}
	counts.Range(func(k, v any) bool {
		if got := *(v.(*int)); got != 1 {
			t.Errorf("run %v executed %d times", k, got)
		}
		return true
	})
	if got := counter(reg, MetricResultsReceived); got != len(runs) {
		t.Errorf("results_received = %d, want %d", got, len(runs))
	}
	if got := counter(reg, MetricDuplicateResults); got != 0 {
		t.Errorf("duplicate_results = %d, want 0", got)
	}
}

// TestCoordinatorWorkerDeath kills a worker mid-campaign: its runs hang
// inside the doomed executor until Kill, the lease lapses, and every
// run still resolves exactly once via the survivor.
func TestCoordinatorWorkerDeath(t *testing.T) {
	reg := obs.NewRegistry()
	c, srv := newCoordServer(t, CoordinatorOptions{
		LeaseTTL: 150 * time.Millisecond,
		Batch:    2,
		Registry: reg,
	})
	var counts sync.Map
	newTestWorker(t, srv.URL, "survivor", echoExec("survivor", &counts))

	started := make(chan struct{}, 64)
	doomed := newTestWorker(t, srv.URL, "doomed", func(ctx context.Context, run sim.RemoteRun) ([]byte, error) {
		started <- struct{}{}
		<-ctx.Done() // hang until killed, like a wedged process
		return nil, ctx.Err()
	})

	runs := makeRuns("job-2", 16)
	var once sync.Once
	var mu sync.Mutex
	payloads := map[int][]byte{}
	done := make(chan error, 1)
	go func() {
		done <- c.Execute(context.Background(), runs, func(k int, payload []byte, rerr error) {
			if rerr != nil {
				t.Errorf("run %d failed: %v", k, rerr)
				return
			}
			mu.Lock()
			payloads[k] = payload
			mu.Unlock()
		})
	}()

	// Once the doomed worker has work in hand, kill it.
	select {
	case <-started:
		once.Do(doomed.Kill)
	case <-time.After(5 * time.Second):
		t.Fatal("doomed worker never received a run")
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("campaign did not finish after the worker died")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(payloads) != len(runs) {
		t.Fatalf("resolved %d of %d runs", len(payloads), len(runs))
	}
	for k, p := range payloads {
		if !strings.HasPrefix(unquote(t, p), "survivor:") {
			t.Errorf("run %d resolved by %q, want the survivor", k, p)
		}
	}
	if got := counter(reg, MetricWorkersLost); got < 1 {
		t.Errorf("workers_lost = %d, want >= 1", got)
	}
	if got := counter(reg, MetricRunsReassigned); got < 1 {
		t.Errorf("runs_reassigned = %d, want >= 1", got)
	}
}

// TestCoordinatorLocalFallback: with no workers at all, a configured
// local executor runs everything on the coordinator.
func TestCoordinatorLocalFallback(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(CoordinatorOptions{
		LeaseTTL: 100 * time.Millisecond,
		Registry: reg,
		LocalExec: func(ctx context.Context, run sim.RemoteRun) ([]byte, error) {
			return []byte(strconv.Quote("local:" + run.Key())), nil
		},
	})
	defer c.Close()

	runs := makeRuns("job-3", 5)
	payloads, errs, err := gather(t, c, context.Background(), runs)
	if err != nil || len(errs) != 0 {
		t.Fatalf("Execute err=%v, run errors=%v", err, errs)
	}
	if len(payloads) != len(runs) {
		t.Fatalf("resolved %d of %d runs", len(payloads), len(runs))
	}
	if got := counter(reg, MetricLocalRuns); got != len(runs) {
		t.Errorf("local_runs = %d, want %d", got, len(runs))
	}
}

// TestCoordinatorDuplicateResultDropped posts a stale result for an
// already-resolved run: it must be acknowledged but not accepted.
func TestCoordinatorDuplicateResultDropped(t *testing.T) {
	reg := obs.NewRegistry()
	c, srv := newCoordServer(t, CoordinatorOptions{
		LeaseTTL: 500 * time.Millisecond,
		Registry: reg,
	})
	var counts sync.Map
	newTestWorker(t, srv.URL, "w0", echoExec("w0", &counts))

	runs := makeRuns("job-4", 3)
	if _, errs, err := gather(t, c, context.Background(), runs); err != nil || len(errs) != 0 {
		t.Fatalf("Execute err=%v, run errors=%v", err, errs)
	}

	body, _ := json.Marshal(resultsRequest{
		Worker:  "ghost",
		Results: []sim.RemoteResult{{Job: "job-4", Index: 1, Hash: runs[1].Hash, Payload: []byte(`"late"`)}},
	})
	resp, err := http.Post(srv.URL+"/cluster/results", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr resultsResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || rr.Accepted != 0 {
		t.Fatalf("late result: status=%d accepted=%d, want 200/0", resp.StatusCode, rr.Accepted)
	}
	if got := counter(reg, MetricDuplicateResults); got < 1 {
		t.Errorf("duplicate_results = %d, want >= 1", got)
	}
}

// TestCoordinatorExecuteCancel: cancelling the campaign context
// resolves every outstanding run with the cancellation cause.
func TestCoordinatorExecuteCancel(t *testing.T) {
	c, srv := newCoordServer(t, CoordinatorOptions{LeaseTTL: time.Second})
	newTestWorker(t, srv.URL, "hang", func(ctx context.Context, run sim.RemoteRun) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(100*time.Millisecond, cancel)
	payloads, errs, err := gather(t, c, ctx, makeRuns("job-5", 4))
	if err == nil {
		t.Fatal("Execute returned nil after cancellation")
	}
	if len(payloads) != 0 {
		t.Fatalf("%d runs claimed success after cancellation", len(payloads))
	}
	if len(errs) != 4 {
		t.Fatalf("resolved %d errors, want 4", len(errs))
	}
	for k, e := range errs {
		if !errorsIsCanceled(e) {
			t.Errorf("run %d error = %v, want a cancellation", k, e)
		}
	}
}

func errorsIsCanceled(err error) bool {
	return err != nil && (err == context.Canceled || err.Error() == context.Canceled.Error())
}

// TestCoordinatorRejectsBadRuns: invalid runs resolve immediately with
// a validation error, valid siblings still execute.
func TestCoordinatorRejectsBadRuns(t *testing.T) {
	c, srv := newCoordServer(t, CoordinatorOptions{LeaseTTL: time.Second})
	var counts sync.Map
	newTestWorker(t, srv.URL, "w0", echoExec("w0", &counts))

	runs := makeRuns("job-6", 2)
	runs[1].Hash = "" // invalid
	payloads, errs, err := gather(t, c, context.Background(), runs)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(payloads) != 1 || payloads[0] == nil {
		t.Fatalf("valid run did not resolve: payloads=%v", payloads)
	}
	if errs[1] == nil {
		t.Fatal("invalid run resolved without error")
	}
}

// TestStealFromBackloggedWorker drives the steal pass directly: an idle
// worker takes up to one batch from the longest queue.
func TestStealFromBackloggedWorker(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Hour, Batch: 4})
	defer c.Close()

	c.mu.Lock()
	defer c.mu.Unlock()
	// "a" is mid-push (busy) with a deep queue; "b" is idle.
	a := &remoteWorker{name: "a", inflight: map[string]*task{}, sending: true}
	b := &remoteWorker{name: "b", inflight: map[string]*task{}}
	c.workers["a"], c.workers["b"] = a, b
	for i := 0; i < 6; i++ {
		tk := &task{run: sim.RemoteRun{Job: "j", Index: i, Hash: fmt.Sprintf("h%d", i)}, worker: "a", resolved: false}
		tk.done = func([]byte, error) {}
		a.queue = append(a.queue, tk)
		c.tasks[tk.key()] = tk
	}
	c.stealLocked(time.Now())
	if got := b.queuedLen(); got != 4 {
		t.Fatalf("thief took %d runs, want one batch of 4", got)
	}
	if got := a.queuedLen(); got != 2 {
		t.Fatalf("victim kept %d runs, want 2", got)
	}
	if got := counter(c.opts.Registry, MetricRunsStolen); got != 4 {
		t.Fatalf("runs_stolen = %d, want 4", got)
	}
	// Resolve everything so Close has nothing pending.
	for _, tk := range c.tasks {
		tk.resolved = true
	}
}

package perf

import (
	"math"

	"hotgauge/internal/workload"
)

// IntervalModel is the fast analytic performance model: a first-order
// interval analysis (in the spirit of Eyerman et al.'s mechanistic core
// models) fitted to the same mechanisms as the cycle model. It computes a
// sustained dispatch rate from the workload's ILP, branch behaviour and
// memory behaviour, then converts it into the same Counters the cycle
// model measures. Campaigns over 29 workloads × 7 cores × 3 nodes run
// through this model; the cycle model is the per-configuration ground
// truth.
type IntervalModel struct {
	cfg  Config
	prof workload.Profile
}

// NewIntervalModel builds an interval model for the given profile.
func NewIntervalModel(cfg Config, prof workload.Profile) (*IntervalModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return &IntervalModel{cfg: cfg, prof: prof}, nil
}

// missProfile is the analytic cache-behaviour estimate for a profile:
// the fraction of data accesses that are satisfied by each level.
type missProfile struct {
	toL2, toL3, toMem float64 // fraction of data accesses reaching each level
}

// estimateMisses predicts the per-access miss fractions from the working
// set and stride locality, mirroring the cycle model's hierarchy with its
// next-line prefetcher: sequential traffic is prefetch-covered, random
// traffic misses a level whenever the working set exceeds its capacity.
func estimateMisses(cfg Config, p workload.Profile) missProfile {
	ws := float64(p.WorkingSet)
	randMiss := func(capacity int) float64 {
		c := float64(capacity)
		if ws <= c {
			return 0
		}
		return 1 - c/ws
	}
	seq := p.StrideLocality
	rnd := 1 - seq
	return missProfile{
		toL2:  seq*0.02 + rnd*randMiss(cfg.L1DSize),
		toL3:  seq*0.004 + rnd*randMiss(cfg.L2Size),
		toMem: seq*0.001 + rnd*randMiss(cfg.L3Size),
	}
}

// Step implements Source analytically.
func (m *IntervalModel) Step(step int, cycles uint64) Activity {
	cfg := m.cfg
	par := m.prof.ParamsAt(step)
	mix := par.Mix.Normalized()
	memFrac := mix.Load + mix.Store
	width := float64(cfg.FetchWidth)

	// Base dispatch rate: the front end supplies width×intensity µops per
	// cycle; the window extracts min(1, ILP-limited) of that.
	ilpLimit := math.Min(1, par.ILP/(width*0.8))
	base := width * par.Intensity * ilpLimit
	if base < 0.05 {
		base = 0.05
	}

	// Branch stalls: each mispredict costs the redirect penalty plus the
	// mean resolution depth (the branch must reach execution before the
	// front end can redirect).
	missRate := (1-m.prof.BranchPredictability)*0.5 + 0.04
	brStall := mix.Branch * missRate * (float64(cfg.MispredictPenalty) + 22)

	// Memory stalls. L3-latency misses are largely hidden by the window
	// (the ROB holds ~60 cycles of work at moderate IPC), so they are
	// discounted twice: by MLP and by window overlap. DRAM misses exceed
	// what the window can hide, and the ROB also caps how much DRAM-level
	// MLP is realizable, so their MLP discount saturates.
	mp := estimateMisses(cfg, m.prof)
	const windowHide = 2.5
	// Realizable DRAM-level MLP is bounded by how many independent misses
	// the ROB can hold at once: a workload whose misses are sparse (one
	// per several hundred µops) cannot overlap them no matter how
	// independent they are.
	windowMLP := float64(cfg.ROBEntries) * memFrac * mp.toMem
	dramMLP := math.Min(m.prof.MLP, math.Max(1, windowMLP))
	perAccess := mp.toL3*float64(cfg.L3Lat-cfg.L2Lat)/(m.prof.MLP*windowHide) +
		mp.toMem*float64(cfg.MemLat-cfg.L3Lat)/dramMLP
	memStall := memFrac * perAccess

	uopsPerCycle := 1 / (1/base + brStall + memStall)

	// Deterministic per-timestep jitter so temperature-delta distributions
	// (Fig. 2) show realistic variance.
	jitter := 0.94 + 0.12*workload.Noise(m.prof.Seed, step, 0xA11CE)
	uopsPerCycle *= jitter
	if lim := width * 1.0; uopsPerCycle > lim {
		uopsPerCycle = lim
	}

	total := uopsPerCycle * float64(cycles)
	c := Counters{
		Cycles:    cycles,
		Fetched:   uint64(total),
		Committed: uint64(total),

		IntALUOps: uint64(total * mix.IntALU),
		CALUOps:   uint64(total * mix.CALU),
		FPOps:     uint64(total * mix.FP),
		AVXOps:    uint64(total * mix.AVX),
		Loads:     uint64(total * mix.Load),
		Stores:    uint64(total * mix.Store),
		Branches:  uint64(total * mix.Branch),
	}
	c.Mispredicts = uint64(float64(c.Branches) * missRate)

	mem := float64(c.Loads + c.Stores)
	c.L1IAccesses = c.Fetched / 4
	c.L1IMisses = c.L1IAccesses / 500
	c.L1DAccesses = uint64(mem)
	c.L1DMisses = uint64(mem * mp.toL2)
	// L2 sees demand misses plus the prefetch stream covering sequential
	// accesses (the cycle model counts prefetch installs as L2 work too).
	c.L2Accesses = uint64(mem*mp.toL2 + mem*m.prof.StrideLocality*0.5)
	c.L2Misses = uint64(mem * mp.toL3)
	c.L3Accesses = uint64(mem * mp.toL3)
	c.L3Misses = uint64(mem * mp.toMem)
	c.MemAccesses = uint64(mem * mp.toMem)

	// Occupancies via Little's law (occupancy = rate × residency), plus a
	// stall-fill term: while the head of the ROB waits on a long miss,
	// dispatch keeps filling the window behind it.
	residency := 14 + memFrac*(mp.toL3*float64(cfg.L3Lat)+mp.toMem*float64(cfg.MemLat))
	stallFrac := memStall / (1/base + brStall + memStall)
	c.ROBOcc = clamp01(uopsPerCycle*residency/float64(cfg.ROBEntries) + 0.55*stallFrac)
	// When long misses stall the pipe, the scheduler fills with waiting
	// dependents; model that as direct memory pressure on top of the
	// throughput term.
	memPressure := math.Min(0.35, memFrac*mp.toMem*4)
	c.SchedOcc = clamp01(uopsPerCycle*6/float64(cfg.SchedEntries) + memPressure)
	loadRate := uopsPerCycle * mix.Load
	storeRate := uopsPerCycle * mix.Store
	c.LQOcc = clamp01(loadRate * (float64(cfg.L1Lat) + 4 + mp.toMem*float64(cfg.MemLat)) / float64(cfg.LQEntries))
	c.SQOcc = clamp01(storeRate * (10 + residency*0.3) / float64(cfg.SQEntries))

	return ToActivity(cfg, c)
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"hotgauge/internal/obs"
	"hotgauge/internal/sim"
)

// WorkerOptions configures a cluster worker.
type WorkerOptions struct {
	// Name is the worker's stable identity on the coordinator.
	Name string
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// SelfURL is this worker's base URL as the coordinator should dial
	// it (the -advertise flag).
	SelfURL string
	// Exec executes one run; the serving layer passes its
	// cache-then-simulate path.
	Exec Executor
	// Registry receives the cluster/worker_* metrics (nil = fresh).
	Registry *obs.Registry
	// Client is the HTTP client for control-plane calls (nil = 10 s
	// timeout).
	Client *http.Client
	// Concurrency bounds parallel run executions (0 = GOMAXPROCS).
	Concurrency int
	// JoinTimeout bounds how long Start keeps retrying the initial
	// join before giving up (0 = 10 s) — a worker booted moments
	// before its coordinator should wait, not crash.
	JoinTimeout time.Duration
	// RPCTimeout bounds each control-plane request (join, heartbeat,
	// result post) with its own context deadline (default 5 s), so one
	// black-holed request can never wedge the heartbeat loop past the
	// lease TTL.
	RPCTimeout time.Duration
	// RetrySeed seeds the jittered backoff of the join and result-post
	// retry loops (0 = the package default).
	RetrySeed int64
	// Clock overrides time.Now (tests).
	Clock func() time.Time
	// Sleep overrides the retry loops' cancellable wait (tests pair it
	// with Clock to step a fake clock through backoff schedules).
	Sleep func(ctx context.Context, d time.Duration) error
}

// Worker executes runs pushed by a coordinator: it registers itself,
// heartbeats to keep its leases alive, accepts bounded batches on
// HandleBatch, executes them concurrently, and posts each result back.
// A worker that loses its registration (coordinator restart) rejoins on
// the next heartbeat's 404.
type Worker struct {
	opts   WorkerOptions
	client *http.Client
	clock  func() time.Time
	sleep  func(ctx context.Context, d time.Duration) error
	retry  *backoff

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	sem    chan struct{}

	mu        sync.Mutex
	beatEvery time.Duration

	mBatches, mRuns, mPostErrors, mRejoins *obs.Counter
	mIntegrity                             *obs.Counter
}

// NewWorker creates a worker; call Start to join the cluster.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Name == "" {
		return nil, fmt.Errorf("cluster: worker needs a name")
	}
	if opts.Coordinator == "" || opts.SelfURL == "" {
		return nil, fmt.Errorf("cluster: worker needs coordinator and self URLs")
	}
	if opts.Exec == nil {
		return nil, fmt.Errorf("cluster: worker needs an executor")
	}
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = runtime.GOMAXPROCS(0)
	}
	if opts.JoinTimeout <= 0 {
		opts.JoinTimeout = 10 * time.Second
	}
	if opts.RPCTimeout <= 0 {
		opts.RPCTimeout = 5 * time.Second
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.Sleep == nil {
		opts.Sleep = sleepCtx
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Worker{
		opts:        opts,
		client:      client,
		clock:       opts.Clock,
		sleep:       opts.Sleep,
		retry:       newBackoff(0, 0, opts.RetrySeed),
		ctx:         ctx,
		cancel:      cancel,
		sem:         make(chan struct{}, opts.Concurrency),
		beatEvery:   time.Second,
		mBatches:    opts.Registry.Counter(MetricWorkerBatches),
		mRuns:       opts.Registry.Counter(MetricWorkerRuns),
		mPostErrors: opts.Registry.Counter(MetricWorkerPostErrors),
		mRejoins:    opts.Registry.Counter(MetricWorkerRejoins),
		mIntegrity:  opts.Registry.Counter(MetricIntegrityRejected),
	}, nil
}

// Start joins the coordinator (retrying through JoinTimeout, so boot
// order between worker and coordinator does not matter) and starts the
// heartbeat loop. Join retries back off exponentially with seeded
// jitter instead of hammering a fixed cadence: a fleet of workers
// booting against a not-yet-listening coordinator decorrelates its
// retry storm, and a test replaying one seed sees the same schedule.
func (w *Worker) Start() error {
	deadline := w.clock().Add(w.opts.JoinTimeout)
	for attempt := 1; ; attempt++ {
		err := w.join()
		if err == nil {
			break
		}
		if w.clock().After(deadline) {
			return fmt.Errorf("cluster: joining %s: %w", w.opts.Coordinator, err)
		}
		if serr := w.sleep(w.ctx, w.retry.delay(attempt)); serr != nil {
			return serr
		}
	}
	w.wg.Add(1)
	go w.heartbeatLoop()
	return nil
}

// Stop gracefully shuts the worker down: in-flight runs are cancelled
// and goroutines reaped. Safe to call twice.
func (w *Worker) Stop() {
	w.cancel()
	w.wg.Wait()
}

// Kill cancels the worker without waiting — the test hook for sudden
// death: heartbeats stop, open batches are refused with 503, and
// nothing more is posted, exactly as if the process had been kill -9'd.
func (w *Worker) Kill() {
	w.cancel()
}

// join registers with the coordinator and adopts its lease TTL as the
// heartbeat cadence (a third of the TTL, so two beats may be lost
// before custody lapses).
func (w *Worker) join() error {
	body, err := json.Marshal(joinRequest{Name: w.opts.Name, Addr: w.opts.SelfURL})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(w.ctx, w.opts.RPCTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.opts.Coordinator+"/cluster/join", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: join refused: HTTP %d", resp.StatusCode)
	}
	var jr joinResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return fmt.Errorf("cluster: bad join response: %w", err)
	}
	beat := time.Duration(jr.LeaseTTLMS) * time.Millisecond / 3
	if beat < 10*time.Millisecond {
		beat = 10 * time.Millisecond
	}
	w.mu.Lock()
	w.beatEvery = beat
	w.mu.Unlock()
	return nil
}

// heartbeatLoop renews liveness until the worker stops. A 404 means the
// coordinator no longer knows us (it restarted, or declared us dead
// during a stall) — rejoin and carry on. Transport errors are retried
// on the next beat: the coordinator may itself be restarting.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	for {
		w.mu.Lock()
		beat := w.beatEvery
		w.mu.Unlock()
		if w.sleep(w.ctx, beat) != nil {
			return
		}
		status, err := w.postJSON("/cluster/heartbeat", heartbeatRequest{Name: w.opts.Name}, nil)
		if err != nil {
			continue
		}
		if status == http.StatusNotFound {
			if w.join() == nil {
				w.mRejoins.Inc()
			}
		}
	}
}

// postJSON POSTs v to the coordinator path under a per-request context
// deadline, optionally decoding the response into out, and returns the
// HTTP status.
func (w *Worker) postJSON(path string, v any, out any) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithTimeout(w.ctx, w.opts.RPCTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// HandleBatch is POST /cluster/batch on the worker: accept a pushed
// batch with 202 and execute its runs concurrently. A stopping worker
// refuses with 503, which the coordinator treats as a dead push.
func (w *Worker) HandleBatch(rw http.ResponseWriter, r *http.Request) {
	if w.ctx.Err() != nil {
		httpError(rw, http.StatusServiceUnavailable, "cluster: worker %s is shutting down", w.opts.Name)
		return
	}
	var req batchRequest
	if err := decodeInto(r, &req); err != nil {
		httpError(rw, http.StatusBadRequest, "bad batch: %v", err)
		return
	}
	for _, run := range req.Runs {
		if err := run.Validate(); err != nil {
			httpError(rw, http.StatusBadRequest, "bad run in batch: %v", err)
			return
		}
		if err := run.CheckIntegrity(); err != nil {
			// A sealed envelope corrupted in flight: refuse the whole
			// batch so the coordinator's retry re-marshals it fresh.
			w.mIntegrity.Inc()
			httpError(rw, http.StatusBadRequest, "%v", err)
			return
		}
	}
	w.mBatches.Inc()
	for _, run := range req.Runs {
		run := run
		w.wg.Add(1)
		go w.execute(run)
	}
	writeJSON(rw, http.StatusAccepted, map[string]int{"accepted": len(req.Runs)})
}

// execute runs one dispatched run and posts its result. A run cut short
// by worker shutdown posts nothing: the coordinator reassigns it when
// the lease lapses, and a late duplicate from the run's first worker is
// dropped by the resolver — never double-counted.
func (w *Worker) execute(run sim.RemoteRun) {
	defer w.wg.Done()
	select {
	case w.sem <- struct{}{}:
	case <-w.ctx.Done():
		return
	}
	defer func() { <-w.sem }()

	payload, err := w.opts.Exec(w.ctx, run)
	if w.ctx.Err() != nil {
		return // dying: let the lease expire rather than post a cancellation
	}
	res := sim.RemoteResult{Job: run.Job, Index: run.Index, Hash: run.Hash, Epoch: run.Epoch}
	switch {
	case err != nil:
		res.Error = err.Error()
		var timeout *sim.RunTimeoutError
		if errors.As(err, &timeout) {
			res.TimedOut = true
		}
	case !json.Valid(payload):
		// Payload rides a json.RawMessage on the wire; anything else
		// would fail to marshal and strand the run until its lease
		// expired. Report it as this run's failure instead.
		res.Error = fmt.Sprintf("cluster: executor produced a non-JSON payload (%d bytes)", len(payload))
	default:
		res.Payload = payload
	}
	w.mRuns.Inc()
	w.postResult(res)
}

// postResult delivers one sealed result, retrying transient failures
// behind the seeded jittered backoff. The coordinator's 200 is an ack
// even for duplicates and fenced results, so a retry can never
// double-resolve a run; a 400 means the body was corrupted in flight,
// and the next attempt re-marshals it fresh.
func (w *Worker) postResult(res sim.RemoteResult) {
	req := resultsRequest{Worker: w.opts.Name, Results: []sim.RemoteResult{res.Sealed()}}
	for attempt := 1; attempt <= 3; attempt++ {
		status, err := w.postJSON("/cluster/results", req, nil)
		if err == nil && status == http.StatusOK {
			return
		}
		if w.sleep(w.ctx, w.retry.delay(attempt)) != nil {
			return
		}
	}
	w.mPostErrors.Inc()
}

// Health is the cluster block of a worker daemon's /healthz.
func (w *Worker) Health() Health {
	return Health{Role: "worker", Coordinator: w.opts.Coordinator}
}

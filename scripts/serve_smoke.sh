#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test for the hotgauged campaign daemon.
#
# Builds cmd/hotgauged, starts it on a scratch port, waits for /healthz,
# submits a tiny two-run §IV-A-style campaign (gcc at 7 nm and 14 nm),
# polls the job to completion, resubmits the identical campaign, and
# asserts that the second pass was served entirely from the result cache
# (serve/cache_hits > 0 at /metrics, state "done" with all runs cached).
#
# Requires: go, curl, jq. Exits nonzero on any failed assertion.
set -euo pipefail

PORT="${PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
BIN="${WORKDIR}/hotgauged"

cleanup() {
    [ -n "${DAEMON_PID:-}" ] && kill "${DAEMON_PID}" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "${WORKDIR}"
}
trap cleanup EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

echo "serve-smoke: building hotgauged"
go build -o "${BIN}" ./cmd/hotgauged

"${BIN}" -addr "127.0.0.1:${PORT}" -queue 4 >"${WORKDIR}/daemon.log" 2>&1 &
DAEMON_PID=$!

echo "serve-smoke: waiting for /healthz"
for i in $(seq 1 50); do
    if curl -fsS "${BASE}/healthz" >/dev/null 2>&1; then break; fi
    kill -0 "${DAEMON_PID}" 2>/dev/null || { cat "${WORKDIR}/daemon.log" >&2; fail "daemon exited early"; }
    sleep 0.2
done
curl -fsS "${BASE}/healthz" | jq -e '.status == "ok"' >/dev/null || fail "healthz not ok"

CAMPAIGN='{"configs":[
  {"workload":"gcc","node":7,"steps":3,"warmup":"cold","resolution":0.2},
  {"workload":"gcc","node":14,"steps":3,"warmup":"cold","resolution":0.2}
]}'

submit_and_wait() {
    local job_id state
    job_id="$(curl -fsS -X POST "${BASE}/jobs" -d "${CAMPAIGN}" | jq -r .id)"
    [ -n "${job_id}" ] && [ "${job_id}" != null ] || fail "submit returned no job id"
    for i in $(seq 1 150); do
        state="$(curl -fsS "${BASE}/jobs/${job_id}" | jq -r .state)"
        case "${state}" in
            done) echo "${job_id}"; return 0 ;;
            failed|cancelled) curl -fsS "${BASE}/jobs/${job_id}" >&2; fail "job ${job_id} ended ${state}" ;;
        esac
        sleep 0.2
    done
    fail "job ${job_id} did not finish (last state: ${state})"
}

echo "serve-smoke: submitting campaign (cold)"
JOB1="$(submit_and_wait)"
echo "serve-smoke: job ${JOB1} done"

echo "serve-smoke: resubmitting identical campaign (expect cache hits)"
JOB2="$(submit_and_wait)"
STATUS2="$(curl -fsS "${BASE}/jobs/${JOB2}")"
echo "${STATUS2}" | jq -e '.cached == 2' >/dev/null \
    || { echo "${STATUS2}" >&2; fail "second job not fully cached"; }

METRICS="$(curl -fsS "${BASE}/metrics")"
echo "${METRICS}" | jq -e '.counters["serve/cache_hits"] >= 2' >/dev/null \
    || { echo "${METRICS}" | jq .counters >&2; fail "serve/cache_hits not >= 2"; }
echo "${METRICS}" | jq -e '.counters["serve/runs_executed"] == 2' >/dev/null \
    || { echo "${METRICS}" | jq .counters >&2; fail "cache hit re-ran the simulator"; }

# Byte-identical result bodies across the two jobs.
cmp <(curl -fsS "${BASE}/jobs/${JOB1}/results/0") <(curl -fsS "${BASE}/jobs/${JOB2}/results/0") \
    || fail "cached result body differs from original"

# The report endpoint renders a row per run.
curl -fsS "${BASE}/jobs/${JOB1}/report" | grep -q "7nm" || fail "report missing 7nm row"

echo "serve-smoke: OK (cache hits: $(echo "${METRICS}" | jq -r '.counters["serve/cache_hits"]'))"

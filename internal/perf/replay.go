package perf

import "fmt"

// ReplaySource replays a recorded per-timestep activity trace — the
// equivalent of the original HotGauge's "bring your own power trace"
// input path. Runs longer than the trace loop it, so a short recorded
// region of interest can drive arbitrarily long thermal simulations (as
// the paper does with its 200 M-instruction ROIs).
type ReplaySource struct {
	trace []Activity
}

// NewReplaySource wraps a recorded trace.
func NewReplaySource(trace []Activity) (*ReplaySource, error) {
	if len(trace) == 0 {
		return nil, fmt.Errorf("perf: empty replay trace")
	}
	for i, a := range trace {
		if len(a.Unit) == 0 {
			return nil, fmt.Errorf("perf: trace entry %d has no unit activity", i)
		}
	}
	return &ReplaySource{trace: trace}, nil
}

// Len returns the trace length in timesteps.
func (r *ReplaySource) Len() int { return len(r.trace) }

// Step implements Source by cycling through the recorded trace.
func (r *ReplaySource) Step(step int, cycles uint64) Activity {
	a := r.trace[step%len(r.trace)]
	// Rescale the counters to the requested window so IPC stays correct
	// even if the recording used a different cycle count.
	if a.Counters.Cycles != 0 && a.Counters.Cycles != cycles {
		scale := float64(cycles) / float64(a.Counters.Cycles)
		c := a.Counters
		c.Cycles = cycles
		c.Fetched = uint64(float64(c.Fetched) * scale)
		c.Committed = uint64(float64(c.Committed) * scale)
		a.Counters = c
	}
	return a
}

// Record runs a source for n timesteps and captures its activity trace.
func Record(src Source, n int, cyclesPerStep uint64) []Activity {
	out := make([]Activity, n)
	for i := 0; i < n; i++ {
		out[i] = src.Step(i, cyclesPerStep)
	}
	return out
}

var _ Source = (*ReplaySource)(nil)

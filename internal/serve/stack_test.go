package serve

import (
	"bytes"
	"net/http"
	"testing"

	"hotgauge/internal/sim"
	"hotgauge/internal/thermal"
)

func TestSpecStackMaterialization(t *testing.T) {
	base := ConfigSpec{Workload: "gcc", Steps: 2}

	stacked := base
	stacked.Stack = sim.StackCoreOnMemory
	cfg, err := stacked.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.StackPreset != sim.StackCoreOnMemory {
		t.Fatalf("StackPreset = %q, want %q", cfg.StackPreset, sim.StackCoreOnMemory)
	}

	custom := base
	custom.Layers = thermal.LiquidCooledStack()
	cfg, err = custom.Config()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Stack) != len(custom.Layers) {
		t.Fatalf("custom layers: got %d, want %d", len(cfg.Stack), len(custom.Layers))
	}

	// Every preset changes the content address; unknown presets fail at
	// hash time (normalize rejects them before any run is enqueued).
	seen := map[string]string{"": specHash(t, base)}
	for _, preset := range sim.StackPresets() {
		s := base
		s.Stack = preset
		h := specHash(t, s)
		for other, oh := range seen {
			if oh == h {
				t.Fatalf("preset %q hashes like %q", preset, other)
			}
		}
		seen[preset] = h
	}
	bad := base
	bad.Stack = "no-such-stack"
	cfg, err = bad.Config()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.Hash(); err == nil {
		t.Fatal("unknown stack preset hashed without error")
	}
}

// TestDefaultStackFolding mirrors TestDefaultSolverFolding: the daemon's
// -stack default lands in specs that pin neither a preset nor custom
// layers, before hashing, and explicit choices win.
func TestDefaultStackFolding(t *testing.T) {
	_, ts := newTestServer(t, Options{DefaultStack: sim.StackCoreOnMemory})

	unset := ConfigSpec{Workload: "gcc", Steps: 2}
	got := submit(t, ts, unset)

	stacked := unset
	stacked.Stack = sim.StackCoreOnMemory
	if want := specHash(t, stacked); got.Hashes[0] != want {
		t.Fatalf("folded hash %s, want the explicit stacked spec's %s", got.Hashes[0], want)
	}

	// A pinned preset wins over the daemon default.
	pinned := unset
	pinned.Stack = sim.StackGPUSM
	got = submit(t, ts, pinned)
	if want := specHash(t, pinned); got.Hashes[0] != want {
		t.Fatalf("pinned-stack hash %s, want %s", got.Hashes[0], want)
	}

	// Custom layers also suppress the fold: the daemon must not stack a
	// preset on top of an explicit layer stack (that combination is
	// rejected as mutually exclusive).
	layered := unset
	layered.Layers = thermal.LiquidCooledStack()
	got = submit(t, ts, layered)
	if want := specHash(t, layered); got.Hashes[0] != want {
		t.Fatalf("custom-layers hash %s, want %s", got.Hashes[0], want)
	}
}

func TestSubmitRejectsUnknownStack(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postJobs(t, ts, ConfigSpec{Workload: "gcc", Steps: 2, Stack: "no-such-stack"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestNewRejectsUnknownDefaultStack(t *testing.T) {
	if _, err := New(Options{DefaultStack: "no-such-stack"}); err == nil {
		t.Fatal("New accepted an unknown default stack")
	}
}

// TestStackedRunView runs a stacked spec end-to-end through the daemon
// and checks the per-die series reach the wire form and the /report
// breakdown, while single-die payloads keep their legacy shape.
func TestStackedRunView(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	stacked := ConfigSpec{Workload: "gcc", Steps: 3, Stack: sim.StackMemoryOnCore, RecordSeverity: true}
	plain := ConfigSpec{Workload: "gcc", Steps: 3, RecordSeverity: true}
	job := submit(t, ts, stacked, plain)
	waitState(t, ts, job.ID, JobDone)

	var v RunView
	getJSON(t, ts, "/jobs/"+job.ID+"/results/0", &v)
	if len(v.DieLabels) != 2 {
		t.Fatalf("die labels = %v, want 2 planes", v.DieLabels)
	}
	if len(v.DieMaxTempC) != 2 || len(v.DieSeverity) != 2 {
		t.Fatalf("per-die series missing: %d max, %d severity", len(v.DieMaxTempC), len(v.DieSeverity))
	}
	if len(v.MemPowerW) != v.StepsRun {
		t.Fatalf("%d mem-power samples, want %d", len(v.MemPowerW), v.StepsRun)
	}

	// The single-die payload must not grow the new keys.
	raw := getBody(t, ts, "/jobs/"+job.ID+"/results/1")
	for _, banned := range []string{"die_labels", "mem_power_w"} {
		if bytes.Contains(raw, []byte(banned)) {
			t.Fatalf("single-die payload contains %q:\n%s", banned, raw)
		}
	}

	// The report breaks the stacked row down per die.
	rep := getBody(t, ts, "/jobs/"+job.ID+"/report")
	for _, label := range v.DieLabels {
		if !bytes.Contains(rep, []byte(label)) {
			t.Fatalf("report missing die %q:\n%s", label, rep)
		}
	}
}

package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// SyncPolicy selects how aggressively the journal fsyncs appends.
type SyncPolicy string

const (
	// SyncAlways fsyncs after every append: no acknowledged record is
	// ever lost, at the cost of one fsync per record.
	SyncAlways SyncPolicy = "always"
	// SyncInterval marks appends dirty and fsyncs on a background timer
	// (JournalOptions.SyncEvery, default 100 ms): a crash loses at most
	// one interval of acknowledged records. The default.
	SyncInterval SyncPolicy = "interval"
	// SyncNever leaves flushing to the OS page cache: fastest, and a
	// machine crash may lose everything since the last natural flush.
	SyncNever SyncPolicy = "never"
)

// ParseSyncPolicy validates a policy string (e.g. a -fsync flag value).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncInterval, SyncNever:
		return SyncPolicy(s), nil
	case "":
		return SyncInterval, nil
	}
	return "", fmt.Errorf("store: unknown fsync policy %q (always, interval or never)", s)
}

const (
	// recordHeader is the per-record framing: a 4-byte little-endian
	// payload length followed by a 4-byte CRC32C of the payload.
	recordHeader = 8
	// maxRecord bounds a single payload; a length above it is treated as
	// corruption, not an allocation request.
	maxRecord = 64 << 20

	defaultSegmentBytes = 8 << 20
	defaultSyncEvery    = 100 * time.Millisecond

	segmentPrefix = "seg-"
	segmentSuffix = ".wal"
)

// castagnoli is the CRC32C table (the polynomial with hardware support
// on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("store: journal is closed")

// JournalOptions tunes a Journal; zero values take the documented
// defaults.
type JournalOptions struct {
	// Dir is the segment directory (required; created if missing).
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 8 MiB).
	SegmentBytes int64
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval flush period (default 100 ms).
	SyncEvery time.Duration
}

// Journal is an append-only record log: length-prefixed CRC32C-framed
// payloads across numbered segment files. Appends are serialized and
// safe for concurrent use; Replay must run before the first Append.
type Journal struct {
	opts JournalOptions

	mu      sync.Mutex
	f       *os.File // active segment (lazily opened)
	seq     int      // active segment number
	size    int64    // active segment size
	dirty   bool     // unsynced appends outstanding (SyncInterval)
	lastErr error    // sticky append/sync failure, cleared on success
	closed  bool

	stop chan struct{}
	done chan struct{}
}

// OpenJournal opens (or creates) the journal in opts.Dir.
func OpenJournal(opts JournalOptions) (*Journal, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: journal dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.Sync == "" {
		opts.Sync = SyncInterval
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = defaultSyncEvery
	}
	if err := os.MkdirAll(opts.Dir, 0o777); err != nil {
		return nil, err
	}
	j := &Journal{opts: opts}
	segs, err := j.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		j.seq = segs[len(segs)-1]
	} else {
		j.seq = 1
	}
	if opts.Sync == SyncInterval {
		j.stop = make(chan struct{})
		j.done = make(chan struct{})
		go j.syncLoop()
	}
	return j, nil
}

// segments lists the existing segment numbers in ascending order.
func (j *Journal) segments() ([]int, error) {
	ents, err := os.ReadDir(j.opts.Dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), segmentPrefix+"%08d"+segmentSuffix, &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

func (j *Journal) segPath(n int) string {
	return filepath.Join(j.opts.Dir, fmt.Sprintf("%s%08d%s", segmentPrefix, n, segmentSuffix))
}

// Replay invokes fn for every intact record, oldest first. A record that
// fails its length or CRC check — a torn tail from a crash mid-append,
// or bit rot — ends that segment's replay: the segment is truncated to
// its last intact record so subsequent appends extend a clean prefix,
// and replay continues with the next segment. fn returning an error
// aborts the replay with that error. Call before the first Append.
func (j *Journal) Replay(fn func(payload []byte) error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	segs, err := j.segments()
	if err != nil {
		return err
	}
	for _, n := range segs {
		if err := j.replaySegment(n, fn); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment replays one segment, truncating it at the first
// corrupt or torn record.
func (j *Journal) replaySegment(n int, fn func([]byte) error) error {
	path := j.segPath(n)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var (
		good   int64 // offset after the last intact record
		hdr    [recordHeader]byte
		reason string
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err != io.EOF {
				reason = "torn header"
			}
			break
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecord {
			reason = "bad length"
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			reason = "torn payload"
			break
		}
		if crc32.Checksum(payload, castagnoli) != want {
			reason = "crc mismatch"
			break
		}
		good += recordHeader + int64(length)
		if err := fn(payload); err != nil {
			return err
		}
	}
	if reason != "" {
		// A torn or corrupt tail: drop it so the journal ends on an
		// intact record. The lost suffix was never durably acknowledged
		// (or was damaged at rest); everything before it survives.
		if err := os.Truncate(path, good); err != nil {
			return fmt.Errorf("store: truncating %s after %s: %w", path, reason, err)
		}
	}
	return nil
}

// ensureActive opens the active segment for appending. Caller holds mu.
func (j *Journal) ensureActive() error {
	if j.f != nil {
		return nil
	}
	f, err := os.OpenFile(j.segPath(j.seq), os.O_CREATE|os.O_WRONLY, 0o666)
	if err != nil {
		return err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return err
	}
	j.f, j.size = f, size
	return nil
}

// rotateLocked closes the active segment and starts the next one.
func (j *Journal) rotateLocked() error {
	if j.f != nil {
		if err := j.f.Sync(); err != nil {
			return err
		}
		if err := j.f.Close(); err != nil {
			return err
		}
		j.f = nil
	}
	j.seq++
	if err := j.ensureActive(); err != nil {
		return err
	}
	return syncDir(j.opts.Dir)
}

// Append writes one record, rotating the segment first when it is full.
// The payload is framed with its length and CRC32C and flushed per the
// sync policy. Errors are sticky in Err until a later append succeeds —
// the health signal a server uses to degrade itself when the disk goes
// bad.
func (j *Journal) Append(payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		j.lastErr = ErrClosed
		return ErrClosed
	}
	err := j.appendLocked(payload)
	j.lastErr = err
	return err
}

func (j *Journal) appendLocked(payload []byte) error {
	if len(payload) == 0 || len(payload) > maxRecord {
		return fmt.Errorf("store: record payload of %d bytes out of range", len(payload))
	}
	if err := j.ensureActive(); err != nil {
		return err
	}
	if j.size > 0 && j.size+recordHeader+int64(len(payload)) > j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	rec := make([]byte, recordHeader+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	copy(rec[recordHeader:], payload)
	if _, err := j.f.Write(rec); err != nil {
		return err
	}
	j.size += int64(len(rec))
	if j.opts.Sync == SyncAlways {
		return j.f.Sync()
	}
	j.dirty = true
	return nil
}

// Compact atomically replaces the journal's whole history with the
// given records: they are written to a fresh segment via temp-and-rename
// and every older segment is deleted. Callers pass the minimal record
// set that reconstructs the live state (e.g. one summary per job),
// bounding replay time and disk use regardless of journal age.
func (j *Journal) Compact(records [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	old, err := j.segments()
	if err != nil {
		return err
	}
	next := j.seq + 1
	var buf []byte
	for _, payload := range records {
		if len(payload) == 0 || len(payload) > maxRecord {
			return fmt.Errorf("store: compaction record of %d bytes out of range", len(payload))
		}
		var hdr [recordHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}
	if err := writeFileAtomic(j.segPath(next), buf); err != nil {
		return err
	}
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	j.seq = next
	j.size = int64(len(buf))
	for _, n := range old {
		if n < next {
			if err := os.Remove(j.segPath(n)); err != nil {
				return err
			}
		}
	}
	return syncDir(j.opts.Dir)
}

// Err returns the most recent append or sync failure, or nil after the
// last append succeeded. A non-nil value means acknowledged records may
// not be durable: the serving layer reports itself degraded.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastErr
}

// SegmentCount reports how many segment files exist (tests, ops).
func (j *Journal) SegmentCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	segs, err := j.segments()
	if err != nil {
		return 0
	}
	return len(segs)
}

// syncLoop is the SyncInterval background flusher.
func (j *Journal) syncLoop() {
	defer close(j.done)
	t := time.NewTicker(j.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			j.mu.Lock()
			if j.dirty && j.f != nil {
				if err := j.f.Sync(); err != nil {
					j.lastErr = err
				} else {
					j.dirty = false
				}
			}
			j.mu.Unlock()
		}
	}
}

// Close flushes and closes the journal. Further operations fail with
// ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	var err error
	if j.f != nil {
		if j.dirty {
			err = j.f.Sync()
		}
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
		j.f = nil
	}
	j.mu.Unlock()
	if j.stop != nil {
		close(j.stop)
		<-j.done
	}
	return err
}

// Package power implements the power-modeling substrate of the toolchain:
// the role McPAT v1.2 (with the paper's sub-22 nm extensions) plays in the
// original. Each functional unit has an effective switching capacitance
// budget; dynamic power is a·C·V²·f at the turbo operating point, plus a
// clock-tree idle floor (real cores burn a large fraction of C_dyn in
// clock distribution even at low IPC — this is why measured per-workload
// C_dyn varies only ~1.6× across SPEC). Leakage is area-proportional and
// exponential in temperature, which closes the electrothermal feedback
// loop with the thermal solver.
//
// Node scaling follows §III-B exactly: 50 % area per generation and a 20 %
// C_dyn reduction, with leakage density rising per tech.Node.
package power

package floorplan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hotgauge/internal/tech"
)

func TestBaselinePlansValidate(t *testing.T) {
	for _, node := range tech.Nodes() {
		fp, err := New(Config{Node: node})
		if err != nil {
			t.Fatalf("%v: %v", node, err)
		}
		if got := len(fp.UnitsOfKind(KindCALU)); got != NumCores {
			t.Errorf("%v: %d cALUs, want %d", node, got, NumCores)
		}
	}
}

func TestCoreAreaMatchesTableI(t *testing.T) {
	want := map[tech.Node]float64{tech.Node14: 5.0, tech.Node10: 2.5, tech.Node7: 1.25}
	for node, area := range want {
		fp := MustNew(Config{Node: node})
		got := fp.CoreRects[0].Area()
		if math.Abs(got-area)/area > 0.01 {
			t.Errorf("%v core area = %.3f mm², want %.3f", node, got, area)
		}
	}
}

func TestCoreAspectRatio(t *testing.T) {
	fp := MustNew(Config{Node: tech.Node14})
	r := fp.CoreRects[0]
	if math.Abs(r.W/r.H-CoreAspectW/CoreAspectH) > 1e-6 {
		t.Fatalf("aspect = %.3f, want %.3f", r.W/r.H, CoreAspectW/CoreAspectH)
	}
}

func TestDieShrinksWithNode(t *testing.T) {
	a14 := MustNew(Config{Node: tech.Node14}).Die.Area()
	a10 := MustNew(Config{Node: tech.Node10}).Die.Area()
	a7 := MustNew(Config{Node: tech.Node7}).Die.Area()
	if math.Abs(a10/a14-0.5) > 0.01 || math.Abs(a7/a14-0.25) > 0.01 {
		t.Fatalf("die areas %v %v %v do not follow 1:0.5:0.25", a14, a10, a7)
	}
}

func TestCorePositions(t *testing.T) {
	fp := MustNew(Config{Node: tech.Node7})
	// Left cores must be strictly left of right cores; core 3 in between.
	for _, l := range LeftCores() {
		for _, r := range RightCores() {
			if fp.CoreRects[l].X >= fp.CoreRects[r].X {
				t.Fatalf("core %d (x=%v) not left of core %d (x=%v)",
					l, fp.CoreRects[l].X, r, fp.CoreRects[r].X)
			}
		}
	}
	mid := fp.CoreRects[3]
	if mid.X <= fp.CoreRects[0].X || mid.X >= fp.CoreRects[1].X {
		t.Fatalf("core 3 (x=%v) not between columns", mid.X)
	}
	// IMC/IO strip must be adjacent to the left column (x < left cores).
	imc, ok := fp.Unit("IMC")
	if !ok {
		t.Fatal("no IMC unit")
	}
	if imc.Rect.X >= fp.CoreRects[0].X {
		t.Fatal("IMC not on the left edge")
	}
}

func TestUnitScalingGrowsOnlyTarget(t *testing.T) {
	base := MustNew(Config{Node: tech.Node7})
	scaled := MustNew(Config{Node: tech.Node7, KindScale: map[Kind]float64{KindFpIWin: 10}})

	baseFpIWin := base.UnitsOfKind(KindFpIWin)[0].Area()
	scaledFpIWin := scaled.UnitsOfKind(KindFpIWin)[0].Area()
	if math.Abs(scaledFpIWin/baseFpIWin-10) > 0.01 {
		t.Fatalf("fpIWin area ratio = %v, want 10", scaledFpIWin/baseFpIWin)
	}
	// Other units keep (approximately) their absolute area.
	baseROB := base.UnitsOfKind(KindROB)[0].Area()
	scaledROB := scaled.UnitsOfKind(KindROB)[0].Area()
	if math.Abs(scaledROB/baseROB-1) > 0.05 {
		t.Fatalf("ROB area changed by factor %v under fpIWin scaling", scaledROB/baseROB)
	}
	// The core must grow by exactly the added area (up to row re-packing).
	added := (10 - 1) * baseFpIWin
	growth := scaled.CoreRects[0].Area() - base.CoreRects[0].Area()
	if math.Abs(growth-added)/added > 0.05 {
		t.Fatalf("core growth = %v mm², want ≈ %v", growth, added)
	}
}

func TestICScaling(t *testing.T) {
	base := MustNew(Config{Node: tech.Node7})
	big := MustNew(Config{Node: tech.Node7, ICAreaFactor: 1.75})
	if math.Abs(big.Die.Area()/base.Die.Area()-1.75) > 1e-6 {
		t.Fatalf("die area factor = %v, want 1.75", big.Die.Area()/base.Die.Area())
	}
	// Every unit's area grows by the same factor.
	for i := range base.Units {
		ratio := big.Units[i].Area() / base.Units[i].Area()
		if math.Abs(ratio-1.75) > 1e-6 {
			t.Fatalf("unit %s area ratio = %v", base.Units[i].Name, ratio)
		}
	}
}

func TestRejectsNonPositiveScale(t *testing.T) {
	if _, err := New(Config{KindScale: map[Kind]float64{KindROB: 0}}); err == nil {
		t.Fatal("expected error for zero kind scale")
	}
}

func TestUnitAtFindsOwnCenters(t *testing.T) {
	fp := MustNew(Config{Node: tech.Node14})
	for _, u := range fp.Units {
		cx, cy := u.Rect.Center()
		got, ok := fp.UnitAt(cx, cy)
		if !ok || got.Name != u.Name {
			t.Fatalf("UnitAt(center of %s) = %v, %v", u.Name, got.Name, ok)
		}
	}
}

func TestWhitespaceSmall(t *testing.T) {
	fp := MustNew(Config{Node: tech.Node14})
	if ws := fp.WhitespaceFraction(); ws > 0.02 || ws < -1e-9 {
		t.Fatalf("whitespace fraction = %v", ws)
	}
}

func TestCategoryOfCoversAllKinds(t *testing.T) {
	for _, k := range CoreKinds() {
		if k == KindCoreOther {
			continue
		}
		if CategoryOf(k) == CatOther {
			t.Errorf("kind %s mapped to CatOther", k)
		}
	}
	for _, k := range UncoreKinds() {
		if CategoryOf(k) != CatUncore {
			t.Errorf("kind %s not CatUncore", k)
		}
	}
	if CategoryOf(KindCoreOther) != CatOther {
		t.Error("core_other should be CatOther")
	}
}

func TestUnitLookupByName(t *testing.T) {
	fp := MustNew(Config{Node: tech.Node7})
	u, ok := fp.Unit("core3.cALU")
	if !ok || u.Core != 3 || u.Kind != KindCALU {
		t.Fatalf("Unit(core3.cALU) = %+v, %v", u, ok)
	}
	if _, ok := fp.Unit("nope"); ok {
		t.Fatal("lookup of missing unit succeeded")
	}
}

func TestRandomUnitScalingProperty(t *testing.T) {
	// ANY combination of per-kind area scales in [0.5, 12] must yield a
	// valid (non-overlapping, gap-free) floorplan whose scaled units have
	// the requested area ratios.
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		kinds := CoreKinds()
		scale := map[Kind]float64{}
		for i := 0; i < 3; i++ {
			k := kinds[rng.Intn(len(kinds))]
			scale[k] = 0.5 + rng.Float64()*11.5
		}
		base, err := New(Config{Node: tech.Node7})
		if err != nil {
			return false
		}
		fp, err := New(Config{Node: tech.Node7, KindScale: scale})
		if err != nil {
			return false
		}
		for k, s := range scale {
			b := base.UnitsOfKind(k)[0].Area()
			g := fp.UnitsOfKind(k)[0].Area()
			if math.Abs(g/b-s)/s > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMirrorRightReversesRowOrder(t *testing.T) {
	base := MustNew(Config{Node: tech.Node7})
	mir := MustNew(Config{Node: tech.Node7, MirrorRight: true})
	// Left cores unchanged.
	b0, _ := base.Unit("core0.L1I")
	m0, _ := mir.Unit("core0.L1I")
	if b0.Rect != m0.Rect {
		t.Fatal("left core changed under MirrorRight")
	}
	// Right cores: the first row's first unit (L1I) moves from the left
	// end of the row to the right end.
	b1, _ := base.Unit("core1.L1I")
	m1, _ := mir.Unit("core1.L1I")
	if !(m1.Rect.X > b1.Rect.X) {
		t.Fatalf("core1.L1I did not move right: %v -> %v", b1.Rect.X, m1.Rect.X)
	}
	if err := mir.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRowShuffleDeterministicAndValid(t *testing.T) {
	a := MustNew(Config{Node: tech.Node7, RowShuffleSeed: 7})
	b := MustNew(Config{Node: tech.Node7, RowShuffleSeed: 7})
	c := MustNew(Config{Node: tech.Node7, RowShuffleSeed: 8})
	ua, _ := a.Unit("core0.cALU")
	ub, _ := b.Unit("core0.cALU")
	if ua.Rect != ub.Rect {
		t.Fatal("same seed produced different plans")
	}
	// A different seed must move at least one unit.
	moved := false
	for _, u := range a.Units {
		v, _ := c.Unit(u.Name)
		if v.Rect != u.Rect {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("different seeds produced identical plans")
	}
	// Areas are permutation-invariant.
	for _, u := range a.Units {
		v, _ := c.Unit(u.Name)
		if math.Abs(u.Area()-v.Area()) > 1e-12 {
			t.Fatalf("unit %s area changed under shuffle", u.Name)
		}
	}
}

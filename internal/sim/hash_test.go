package sim

import (
	"strings"
	"testing"

	"hotgauge/internal/core"
	"hotgauge/internal/floorplan"
	"hotgauge/internal/perf"
	"hotgauge/internal/tech"
	"hotgauge/internal/thermal"
	"hotgauge/internal/workload"
)

func mustHash(t *testing.T, cfg Config) string {
	t.Helper()
	h, err := cfg.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHashStableAcrossCalls(t *testing.T) {
	cfg := fastConfig(t, "gcc", 5)
	cfg.Floorplan.KindScale = map[floorplan.Kind]float64{"fpIWin": 2, "RAT_INT": 1.5, "RAT_FP": 3}
	p, _ := workload.Lookup("namd")
	cfg.Assignments = map[int]workload.Profile{1: p, 3: p, 5: p}
	cfg.Record.UnitSeverity = []string{"core0.fpIWin"}
	want := mustHash(t, cfg)
	for i := 0; i < 25; i++ {
		if got := mustHash(t, cfg); got != want {
			t.Fatalf("hash unstable across calls: %s vs %s", got, want)
		}
	}
}

func TestHashSemanticEquality(t *testing.T) {
	base := fastConfig(t, "gcc", 5)

	explicit := base
	explicit.Floorplan.Node = tech.Node7
	explicit.Definition = core.DefaultDefinition()
	explicit.Resolution = 0.2
	explicit.Ambient = thermal.DefaultAmbient
	explicit.CyclesPerStep = workload.TimestepCycles
	explicit.Solver = &thermal.Explicit{}
	explicit.Stack = thermal.DefaultStack()
	explicit.SinkConductance = thermal.SinkConductance

	if got, want := mustHash(t, explicit), mustHash(t, base); got != want {
		t.Fatalf("explicit defaults hash %s != zero-value defaults hash %s", got, want)
	}

	// Result-neutral knobs must not shift the hash: observability wiring
	// and the explicit solver's (bit-identical) parallelism.
	tuned := base
	tuned.Solver = &thermal.Explicit{Workers: 8}
	if mustHash(t, tuned) != mustHash(t, base) {
		t.Fatal("Explicit.Workers changed the hash")
	}

	// UnitSeverity request order only permutes map insertion, not the
	// recorded series.
	a, b := base, base
	a.Record.UnitSeverity = []string{"core0.fpIWin", "core1.fpIWin"}
	b.Record.UnitSeverity = []string{"core1.fpIWin", "core0.fpIWin"}
	if mustHash(t, a) != mustHash(t, b) {
		t.Fatal("UnitSeverity order changed the hash")
	}

	// Maps populated in different insertion orders hash equal.
	p, _ := workload.Lookup("namd")
	m1, m2 := base, base
	m1.Floorplan.KindScale = map[floorplan.Kind]float64{}
	m2.Floorplan.KindScale = map[floorplan.Kind]float64{}
	m1.Assignments = map[int]workload.Profile{}
	m2.Assignments = map[int]workload.Profile{}
	kinds := []floorplan.Kind{"fpIWin", "RAT_INT", "RAT_FP", "iIWin", "ROB"}
	for i, k := range kinds {
		m1.Floorplan.KindScale[k] = 1 + float64(i)
		m1.Assignments[i+1] = p
	}
	for i := len(kinds) - 1; i >= 0; i-- {
		m2.Floorplan.KindScale[kinds[i]] = 1 + float64(i)
		m2.Assignments[i+1] = p
	}
	if mustHash(t, m1) != mustHash(t, m2) {
		t.Fatal("map insertion order changed the hash")
	}
}

func TestHashSensitivity(t *testing.T) {
	base := fastConfig(t, "gcc", 5)
	baseHash := mustHash(t, base)
	namd, _ := workload.Lookup("namd")

	tweaks := map[string]func(*Config){
		"steps":          func(c *Config) { c.Steps = 6 },
		"core":           func(c *Config) { c.Core = 2 },
		"node":           func(c *Config) { c.Floorplan.Node = tech.Node14 },
		"kind-scale":     func(c *Config) { c.Floorplan.KindScale = map[floorplan.Kind]float64{"fpIWin": 2} },
		"ic-area":        func(c *Config) { c.Floorplan.ICAreaFactor = 1.75 },
		"mirror":         func(c *Config) { c.Floorplan.MirrorRight = true },
		"shuffle-seed":   func(c *Config) { c.Floorplan.RowShuffleSeed = 7 },
		"workload":       func(c *Config) { c.Workload = namd },
		"smt":            func(c *Config) { c.SMTWorkload = &namd },
		"warmup":         func(c *Config) { c.Warmup = WarmupIdle },
		"stop":           func(c *Config) { c.StopAtHotspot = true },
		"temp-threshold": func(c *Config) { c.Definition = core.Definition{TempThreshold: 85, MLTDThreshold: 25, Radius: 1} },
		"resolution":     func(c *Config) { c.Resolution = 0.1 },
		"ambient":        func(c *Config) { c.Ambient = 45 },
		"cycle-model":    func(c *Config) { c.UseCycleModel = true },
		"cycles-step":    func(c *Config) { c.CyclesPerStep = 1000 },
		"solver":         func(c *Config) { c.Solver = &thermal.Implicit{} },
		"solver-tol":     func(c *Config) { c.Solver = &thermal.Implicit{Tol: 1e-6} },
		"solver-adi":     func(c *Config) { c.Solver = &thermal.ADI{} },
		"adi-errtol":     func(c *Config) { c.Solver = &thermal.ADI{ErrTol: 0.02} },
		"adi-maxsub":     func(c *Config) { c.Solver = &thermal.ADI{MaxSubsteps: 128} },
		"fast-steady":    func(c *Config) { c.FastSteady = true },
		"steady-after":   func(c *Config) { c.FastSteady = true; c.FastSteadyAfter = 10 },
		"steady-tol":     func(c *Config) { c.FastSteady = true; c.FastSteadyTol = 0.05 },
		"stack":          func(c *Config) { c.Stack = thermal.LiquidCooledStack() },
		"sink":           func(c *Config) { c.SinkConductance = 2 * thermal.SinkConductance },
		"leakage":        func(c *Config) { c.DisableLeakageFeedback = true },
		"record-mltd":    func(c *Config) { c.Record.MLTD = true },
		"record-frames":  func(c *Config) { c.Record.FieldEvery = 10 },
		"unit-severity":  func(c *Config) { c.Record.UnitSeverity = []string{"core0.fpIWin"} },
		"assignment":     func(c *Config) { c.Assignments = map[int]workload.Profile{1: namd} },
	}
	seen := map[string]string{"": baseHash}
	for name, tweak := range tweaks {
		cfg := base
		tweak(&cfg)
		h := mustHash(t, cfg)
		if prev, dup := seen[h]; dup {
			t.Errorf("tweak %q collides with %q (hash %s)", name, prev, h)
		}
		seen[h] = name
	}
	// Implicit solver defaults: zero knobs and the documented defaults
	// are the same numerics.
	d1, d2 := base, base
	d1.Solver = &thermal.Implicit{}
	d2.Solver = &thermal.Implicit{MaxIters: 60, Tol: 1e-5}
	if mustHash(t, d1) != mustHash(t, d2) {
		t.Error("Implicit zero-value and explicit defaults hash differently")
	}
	// ADI likewise: counters are instrumentation, the numeric knobs hash
	// with their documented defaults filled in.
	a1, a2 := base, base
	a1.Solver = &thermal.ADI{}
	a2.Solver = &thermal.ADI{ErrTol: 0.1, MaxSubsteps: 64}
	if mustHash(t, a1) != mustHash(t, a2) {
		t.Error("ADI zero-value and explicit defaults hash differently")
	}
	// Steady fast-path defaults: enabling with zero knobs and with the
	// documented defaults are the same run.
	f1, f2 := base, base
	f1.FastSteady = true
	f2.FastSteady = true
	f2.FastSteadyAfter = 5
	f2.FastSteadyTol = 1e-3
	if mustHash(t, f1) != mustHash(t, f2) {
		t.Error("FastSteady zero-value and explicit defaults hash differently")
	}
}

func TestHashRejectsOpaqueConfigs(t *testing.T) {
	src := fastConfig(t, "gcc", 3)
	rec := perf.Record(mustSource(t, src), 2, workload.TimestepCycles)
	replay, err := perf.NewReplaySource(rec)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func(*Config){
		"source":     func(c *Config) { c.Source = replay },
		"controller": func(c *Config) { c.Controller = &cancelAfter{} },
		"invalid":    func(c *Config) { c.Steps = 0 },
		"solver":     func(c *Config) { c.Solver = &stubSolver{} },
	}
	for name, tweak := range cases {
		cfg := fastConfig(t, "gcc", 3)
		tweak(&cfg)
		if _, err := cfg.Hash(); err == nil {
			t.Errorf("%s: Hash() succeeded, want error", name)
		} else if name == "source" && !strings.Contains(err.Error(), "Source") {
			t.Errorf("source error %v does not mention Source", err)
		}
	}
}

type stubSolver struct{}

func (stubSolver) Step(*thermal.Grid, *thermal.State, *thermal.Power, float64) error { return nil }
func (stubSolver) Name() string                                                      { return "stub" }

func mustSource(t *testing.T, cfg Config) perf.Source {
	t.Helper()
	s, err := cfg.newSource()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hotgauge/internal/geometry"
)

// gaussianField builds a smooth synthetic temperature map from a few
// Gaussian bumps over a base temperature — the shape real junction maps
// have.
func gaussianField(nx, ny int, dx, base float64, seed int64, bumps int, amp float64) *geometry.Field {
	rng := rand.New(rand.NewSource(seed))
	f := geometry.NewField(nx, ny, dx)
	type bump struct{ cx, cy, sigma, a float64 }
	bs := make([]bump, bumps)
	for i := range bs {
		bs[i] = bump{
			cx:    rng.Float64() * float64(nx) * dx,
			cy:    rng.Float64() * float64(ny) * dx,
			sigma: 0.2 + rng.Float64()*0.8,
			a:     amp * (0.3 + rng.Float64()),
		}
	}
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			x, y := f.CellCenter(ix, iy)
			t := base
			for _, b := range bs {
				d2 := (x-b.cx)*(x-b.cx) + (y-b.cy)*(y-b.cy)
				t += b.a * math.Exp(-d2/(2*b.sigma*b.sigma))
			}
			f.Set(ix, iy, t)
		}
	}
	return f
}

func newTestAnalyzer(t *testing.T, f *geometry.Field) *Analyzer {
	t.Helper()
	a, err := NewAnalyzer(f, DefaultDefinition())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDefaultDefinition(t *testing.T) {
	d := DefaultDefinition()
	if d.TempThreshold != 80 || d.MLTDThreshold != 25 || d.Radius != 1.0 {
		t.Fatalf("defaults %+v do not match the case study (80, 25, 1mm)", d)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if (Definition{Radius: -1, MLTDThreshold: 25}).Validate() == nil {
		t.Fatal("negative radius accepted")
	}
	if (Definition{Radius: 1, MLTDThreshold: 0}).Validate() == nil {
		t.Fatal("zero MLTD threshold accepted")
	}
}

func TestAnalyzerRejectsTooCoarseRadius(t *testing.T) {
	f := geometry.NewField(10, 10, 2.0) // 2 mm cells, 1 mm radius
	if _, err := NewAnalyzer(f, DefaultDefinition()); err == nil {
		t.Fatal("radius smaller than a cell accepted")
	}
}

func TestMLTDUniformFieldIsZero(t *testing.T) {
	f := geometry.NewField(30, 30, 0.1)
	f.Fill(95)
	a := newTestAnalyzer(t, f)
	if m := a.MaxMLTD(f); m != 0 {
		t.Fatalf("uniform field MaxMLTD = %v", m)
	}
	if hs := a.Detect(f); len(hs) != 0 {
		t.Fatalf("uniform hot field produced %d hotspots; high T alone is not a hotspot", len(hs))
	}
}

func TestMLTDKnownGradient(t *testing.T) {
	// A single hot cell +40 °C above a flat 60 °C background: MLTD at the
	// hot cell is exactly 40 within any radius.
	f := geometry.NewField(40, 40, 0.1)
	f.Fill(60)
	f.Set(20, 20, 100)
	a := newTestAnalyzer(t, f)
	if m := a.MLTDAt(f, 20, 20); m != 40 {
		t.Fatalf("MLTD at hot cell = %v, want 40", m)
	}
	// At a neighbour cell, MLTD is 0: it is not hotter than its coldest
	// neighbour (it IS the background).
	if m := a.MLTDAt(f, 25, 25); m != 0 {
		t.Fatalf("MLTD at background cell = %v, want 0", m)
	}
}

func TestMLTDRespectsRadius(t *testing.T) {
	// Cold spot just outside the radius must not contribute.
	f := geometry.NewField(60, 60, 0.1)
	f.Fill(90)
	f.Set(30, 30, 100)
	f.Set(30, 45, 40) // 1.5 mm away, beyond the 1 mm radius
	a := newTestAnalyzer(t, f)
	if m := a.MLTDAt(f, 30, 30); m != 10 {
		t.Fatalf("MLTD = %v, want 10 (cold spot outside radius ignored)", m)
	}
	wide, err := NewAnalyzer(f, Definition{TempThreshold: 80, MLTDThreshold: 25, Radius: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if m := wide.MLTDAt(f, 30, 30); m != 60 {
		t.Fatalf("wide-radius MLTD = %v, want 60", m)
	}
}

func TestMLTDFieldMatchesPointQueries(t *testing.T) {
	f := gaussianField(30, 24, 0.1, 55, 42, 4, 40)
	a := newTestAnalyzer(t, f)
	mf := a.MLTDField(f)
	for iy := 0; iy < f.NY; iy += 3 {
		for ix := 0; ix < f.NX; ix += 3 {
			if mf.At(ix, iy) != a.MLTDAt(f, ix, iy) {
				t.Fatalf("MLTDField mismatch at (%d,%d)", ix, iy)
			}
		}
	}
}

func TestCandidatesAreLocalMaxima(t *testing.T) {
	f := gaussianField(40, 30, 0.1, 50, 7, 5, 45)
	a := newTestAnalyzer(t, f)
	for _, c := range a.Candidates(f) {
		t4 := []float64{}
		if c.IX > 0 {
			t4 = append(t4, f.At(c.IX-1, c.IY))
		}
		if c.IX < f.NX-1 {
			t4 = append(t4, f.At(c.IX+1, c.IY))
		}
		if c.IY > 0 {
			t4 = append(t4, f.At(c.IX, c.IY-1))
		}
		if c.IY < f.NY-1 {
			t4 = append(t4, f.At(c.IX, c.IY+1))
		}
		for _, n := range t4 {
			if n > c.Temp {
				t.Fatalf("candidate at (%d,%d) is not a local maximum", c.IX, c.IY)
			}
		}
	}
}

func TestGlobalMaxIsAlwaysACandidate(t *testing.T) {
	f := func(seed int64) bool {
		fl := gaussianField(30, 30, 0.1, 50, seed, 6, 50)
		a, err := NewAnalyzer(fl, DefaultDefinition())
		if err != nil {
			return false
		}
		_, mx, my := fl.Max()
		for _, c := range a.Candidates(fl) {
			if c.IX == mx && c.IY == my {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDetectSubsetOfNaive(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := gaussianField(45, 32, 0.1, 60, seed, 6, 55)
		a := newTestAnalyzer(t, f)
		naive := map[[2]int]bool{}
		for _, h := range a.DetectNaive(f) {
			naive[[2]int{h.IX, h.IY}] = true
		}
		for _, h := range a.Detect(f) {
			if !naive[[2]int{h.IX, h.IY}] {
				t.Fatalf("seed %d: Detect found (%d,%d) that naive did not", seed, h.IX, h.IY)
			}
		}
	}
}

func TestDetectPresenceAgreesWithNaive(t *testing.T) {
	// On smooth fields the candidate detector and the naive detector must
	// agree on whether ANY hotspot exists — the property TUH depends on.
	for seed := int64(0); seed < 40; seed++ {
		f := gaussianField(45, 32, 0.1, 55, seed, 5, 50)
		a := newTestAnalyzer(t, f)
		fast := len(a.Detect(f)) > 0
		naive := len(a.DetectNaive(f)) > 0
		if fast != naive {
			t.Fatalf("seed %d: presence disagreement fast=%v naive=%v", seed, fast, naive)
		}
	}
}

func TestDetectRequiresBothThresholds(t *testing.T) {
	// Hot but uniform: no. Steep but cool: no. Hot and steep: yes.
	mk := func(base, peak float64) *geometry.Field {
		f := geometry.NewField(40, 40, 0.1)
		f.Fill(base)
		// A smooth bump so local maxima behave.
		for dy := -3; dy <= 3; dy++ {
			for dx := -3; dx <= 3; dx++ {
				v := (peak - base) * math.Exp(-float64(dx*dx+dy*dy)/4)
				f.Set(20+dx, 20+dy, base+v)
			}
		}
		return f
	}
	a := newTestAnalyzer(t, mk(0, 0))

	hotUniform := geometry.NewField(40, 40, 0.1)
	hotUniform.Fill(100)
	if len(a.Detect(hotUniform)) != 0 {
		t.Fatal("uniform 100°C die flagged as hotspot")
	}

	coolSteep := mk(20, 60) // 40° gradient but max 60°C < 80
	if len(a.Detect(coolSteep)) != 0 {
		t.Fatal("cool die with steep gradient flagged")
	}

	hotSteep := mk(60, 100) // 100°C peak, 40° gradient
	hs := a.Detect(hotSteep)
	if len(hs) == 0 {
		t.Fatal("hot steep bump not detected")
	}
	if hs[0].IX != 20 || hs[0].IY != 20 {
		t.Fatalf("hotspot at (%d,%d), want (20,20)", hs[0].IX, hs[0].IY)
	}
}

func TestDetectFarFewerCandidatesThanCells(t *testing.T) {
	f := gaussianField(60, 40, 0.1, 60, 3, 6, 50)
	a := newTestAnalyzer(t, f)
	nc := len(a.Candidates(f))
	if nc == 0 || nc > f.NX*f.NY/10 {
		t.Fatalf("candidate count %d not ≪ %d cells", nc, f.NX*f.NY)
	}
}

func TestSigmoidEquation1(t *testing.T) {
	// At x = x₀ the sigmoid is a/2 + y₀.
	if got := Sigmoid(115, 115, 0, 0.2, 2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("σ(x₀) = %v, want 1", got)
	}
	// Monotone increasing for s > 0.
	if Sigmoid(10, 15, -0.25, 0.2, 1.25) >= Sigmoid(20, 15, -0.25, 0.2, 1.25) {
		t.Fatal("σ_M not increasing")
	}
}

func TestSeverityAnchors(t *testing.T) {
	// Fig. 7 anchors: severity saturates to 1 at ≥115 °C regardless of
	// MLTD; ambient-cool die has ≈0 severity; the (80 °C, 25 °C) hotspot
	// definition point indicates mitigation (≥0.5).
	// σ_df alone reaches 1.0 at exactly 115 °C; with zero MLTD the
	// (negative) timing term pulls the total slightly below.
	if s := SigmaDF(115); math.Abs(s-1) > 1e-12 {
		t.Fatalf("σ_df(115) = %v, want 1", s)
	}
	if s := Severity(115, 0); s < 0.80 {
		t.Fatalf("sev(115,0) = %v, want ≥0.80", s)
	}
	if s := Severity(115, 25); s < 0.99 {
		t.Fatalf("sev(115,25) = %v, want ≈1 (device failure imminent)", s)
	}
	if s := Severity(130, 50); s != 1 {
		t.Fatalf("sev(130,50) = %v, want clipped to 1", s)
	}
	if s := Severity(40, 2); s > 0.15 {
		t.Fatalf("sev(40,2) = %v, want ≈0", s)
	}
	if s := Severity(80, 25); s < 0.5 || s > 0.85 {
		t.Fatalf("sev at the hotspot definition point = %v, want mitigation-required territory", s)
	}
}

func TestSeverityMonotoneAndBounded(t *testing.T) {
	f := func(t1, m1, dt, dm float64) bool {
		t0 := math.Mod(math.Abs(t1), 150)
		m0 := math.Mod(math.Abs(m1), 80)
		ddt := math.Mod(math.Abs(dt), 30)
		ddm := math.Mod(math.Abs(dm), 30)
		s0 := Severity(t0, m0)
		s1 := Severity(t0+ddt, m0+ddm)
		return s0 >= 0 && s0 <= 1 && s1+1e-12 >= s0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxSeverityMatchesBruteForce(t *testing.T) {
	f := gaussianField(35, 25, 0.1, 65, 9, 4, 50)
	a := newTestAnalyzer(t, f)
	want := 0.0
	for iy := 0; iy < f.NY; iy++ {
		for ix := 0; ix < f.NX; ix++ {
			if s := Severity(f.At(ix, iy), a.MLTDAt(f, ix, iy)); s > want {
				want = s
			}
		}
	}
	if got := a.MaxSeverity(f); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MaxSeverity = %v, want %v", got, want)
	}
}

func TestHasHotspotMatchesDetect(t *testing.T) {
	f := gaussianField(40, 30, 0.1, 62, 11, 5, 55)
	a := newTestAnalyzer(t, f)
	if a.HasHotspot(f) != (len(a.Detect(f)) > 0) {
		t.Fatal("HasHotspot inconsistent with Detect")
	}
}

func TestEdgeCellsHandled(t *testing.T) {
	// Hotspot in the die corner: stencil clipped, no panic, detection
	// still works.
	f := geometry.NewField(30, 30, 0.1)
	f.Fill(55)
	f.Set(0, 0, 110)
	a := newTestAnalyzer(t, f)
	hs := a.Detect(f)
	if len(hs) != 1 || hs[0].IX != 0 || hs[0].IY != 0 {
		t.Fatalf("corner hotspot not detected: %+v", hs)
	}
	if m := a.MLTDAt(f, 0, 0); m != 55 {
		t.Fatalf("corner MLTD = %v, want 55", m)
	}
}

// Package fault is the fault-injection harness behind the toolchain's
// fault-tolerance tests and hotgauged's dev-only -fault-rate flag: it
// wraps the co-simulation's pluggable seams — the thermal solver
// (FlakySolver) and the performance-model source (FlakySource) — with
// deterministic, seedable injection of panics, transient errors, added
// latency, and NaN field poisoning.
//
// Recovery paths that are never exercised rot silently; this package
// makes every failure mode reproducible on demand so the sim layer's
// panic isolation, per-run deadlines, retry/backoff, and solver
// fallback are proven by -race tests (make faultcheck) and end-to-end
// against a live daemon, not just claimed. Exact triggers (PanicAt,
// FailFirst, StallAt, NaNAt; 1-based call counts) give tests precise
// per-run attribution; rate-based triggers (PanicRate/ErrorRate with a
// fixed Seed) give the daemon a reproducible background fault load.
//
// Injected errors implement Transient() bool, the marker contract
// sim.Retryable classifies as retryable, so the retry layer treats them
// exactly like real transient failures. The package is dev/test-only:
// no production path constructs its wrappers unless explicitly asked
// to.
package fault

// Package store is the durability layer behind the campaign service: an
// append-only job journal, an on-disk content-addressed result store,
// and file-backed run checkpoints, rooted together under one data
// directory.
//
// The journal records length-prefixed, CRC32C-protected payloads across
// rotated segment files with a configurable fsync policy; startup replay
// truncates torn tails so a crash mid-append never corrupts the intact
// prefix. Compaction rewrites the live state into a fresh segment and
// drops the history. The result store keys immutable result payloads by
// their canonical config hash and backs (and repopulates) the serving
// layer's in-memory LRU cache, making repeat submissions byte-identical
// across process restarts. Every multi-byte on-disk write goes through
// write-to-temp-then-rename, so a crash mid-write leaves either the old
// contents or the new — never a partial blob that replay would treat as
// valid.
package store

// Package tech models process-technology nodes and the scaling rules the
// paper applies between them: 50 % area reduction and 20 % effective
// switching-capacitance (C_dyn) reduction per node generation, with leakage
// density rising as transistors pack tighter (post-Dennard scaling).
//
// The case study covers 14 nm, 10 nm and 7 nm, all run at the turbo-boost
// operating point of 1.4 V and 5 GHz. The scaling helpers extrapolate, so
// nodes beyond 7 nm can be constructed as the paper suggests.
package tech

package core

import "math"

// Sigmoid is the parameterized sigmoid of Equation 1:
//
//	σ(x; x₀, y₀, s, a) = a / (1 + e^(−s·(x−x₀))) + y₀
func Sigmoid(x, x0, y0, s, a float64) float64 {
	return a/(1+math.Exp(-s*(x-x0))) + y0
}

// The three fitted sigmoid components of Equation 2, tuned (per the
// paper, from industry data) for high-speed CPU-like circuits without
// DRAM in the thermal stack.

// SigmaDF is the device-failure term: saturates to 1 at 115 °C, the
// junction temperature of modern processors without a guardband.
func SigmaDF(t float64) float64 { return Sigmoid(t, 115, 0, 0.2, 2) }

// SigmaM is the marginal MLTD contribution to timing failure.
func SigmaM(mltd float64) float64 { return Sigmoid(mltd, 15, -0.25, 0.2, 1.25) }

// SigmaT is the marginal temperature contribution to timing failure;
// MLTD and T must be considered together because temperature affects
// logic and interconnect timing in opposite directions.
func SigmaT(t float64) float64 { return Sigmoid(t, 60, 0.35, 0.05, 0.65) }

// Severity is the hotspot severity metric of Equation 2, clipped to
// [0, 1]:
//
//	sev(T, MLTD) = σ_df(T) + σ_M(MLTD)·σ_T(T)
//
// 0 means no hotspot concern; 0.5 means immediate mitigation is required;
// 1 means errors or permanent damage are imminent.
func Severity(t, mltd float64) float64 {
	s := SigmaDF(t) + SigmaM(mltd)*SigmaT(t)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"hotgauge/internal/cluster"
	"hotgauge/internal/fault"
	"hotgauge/internal/sim"
	"hotgauge/internal/thermal"
)

// newClusterNode builds one daemon (coordinator or worker — every
// daemon is both halves) on an httptest listener.
func newClusterNode(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.ClusterLeaseTTL == 0 {
		opts.ClusterLeaseTTL = 500 * time.Millisecond
	}
	if opts.ClusterBatch == 0 {
		opts.ClusterBatch = 2
	}
	return newTestServer(t, opts)
}

// joinWorkers attaches n fresh worker daemons to the coordinator and
// returns them. Each worker is a full Server — own cache, registry and
// executor — joined over real HTTP.
func joinWorkers(t *testing.T, coordTS *httptest.Server, n int) []*Server {
	t.Helper()
	workers := make([]*Server, n)
	for i := 0; i < n; i++ {
		ws, wts := newClusterNode(t, Options{})
		if err := ws.JoinCluster(coordTS.URL, fmt.Sprintf("worker-%d", i), wts.URL); err != nil {
			t.Fatalf("worker %d join: %v", i, err)
		}
		workers[i] = ws
	}
	return workers
}

// fetchRun GETs one run's result bytes from a daemon.
func fetchRun(t *testing.T, ts *httptest.Server, job string, run int) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s/results/%d", ts.URL, job, run))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s/%d: status %d: %s", job, run, resp.StatusCode, body)
	}
	return body
}

// clusterSpecs is the shared campaign of the cluster tests: every run
// gets a distinct (node, steps) pair, so every run has a distinct
// config hash.
func clusterSpecs(n int) []ConfigSpec {
	nodes := []int{7, 10, 14}
	specs := make([]ConfigSpec, n)
	for i := range specs {
		specs[i] = tinySpec(nodes[i%len(nodes)], 2+i/len(nodes))
	}
	return specs
}

// stallRuns plants a sleep-only FlakySolver on a worker daemon: every
// run it executes pauses before its first step, but steps untouched, so
// result bytes stay identical to an unstalled control.
func stallRuns(ws *Server, d time.Duration) {
	ws.wrapCfg = func(i int, cfg sim.Config) sim.Config {
		inner := cfg.Solver
		if inner == nil {
			inner = &thermal.Explicit{}
		}
		cfg.Solver = &fault.FlakySolver{Inner: inner, StallAt: 1, Stall: d}
		return cfg
	}
}

// TestClusterFanoutAndDedup drives a coordinator plus two workers
// through a real campaign over real HTTP: the job must complete with
// every run's bytes identical to a single-node control server, the
// simulation work must land on the workers (the coordinator simulates
// nothing itself), and resubmitting the identical campaign after the
// first finishes must be served wholly from the coordinator's
// content-addressed store — cluster-wide dedup, no re-dispatch.
func TestClusterFanoutAndDedup(t *testing.T) {
	specs := clusterSpecs(6)

	// Control: the same campaign on an ordinary single-node server.
	_, controlTS := newTestServer(t, Options{})
	control := submit(t, controlTS, specs...)
	waitState(t, controlTS, control.ID, JobDone)

	coord, coordTS := newClusterNode(t, Options{})
	workers := joinWorkers(t, coordTS, 2)
	waitFor(t, func() bool { return coord.Coordinator().AliveWorkers() == 2 }, "workers to join")

	sub := submit(t, coordTS, specs...)
	waitState(t, coordTS, sub.ID, JobDone)

	for i := range specs {
		got := fetchRun(t, coordTS, sub.ID, i)
		want := fetchRun(t, controlTS, control.ID, i)
		if string(got) != string(want) {
			t.Fatalf("run %d: cluster bytes differ from single-node control\n got: %s\nwant: %s", i, got, want)
		}
	}

	// The coordinator must have fanned out, not simulated locally.
	snap := coord.Registry().Snapshot()
	if got := int(snap.Counters[MetricRunsExecuted]); got != 0 {
		t.Errorf("coordinator executed %d runs itself, want 0", got)
	}
	if got := int(snap.Counters[cluster.MetricRunsDispatched]); got < len(specs) {
		t.Errorf("runs_dispatched = %d, want >= %d", got, len(specs))
	}
	executed := 0
	for _, ws := range workers {
		executed += int(ws.Registry().Snapshot().Counters[MetricRunsExecuted])
	}
	if executed != len(specs) {
		t.Errorf("workers executed %d runs, want exactly %d (exactly-once)", executed, len(specs))
	}

	// Cluster-wide dedup: the first job is terminal, so resubmitting the
	// identical campaign opens a new job — and every one of its runs must
	// be answered from the coordinator's result store without touching
	// the cluster again.
	resub := submit(t, coordTS, specs...)
	if resub.ID == sub.ID {
		t.Fatalf("finished job id reused for resubmission")
	}
	waitState(t, coordTS, resub.ID, JobDone)
	snap2 := coord.Registry().Snapshot()
	if got, before := int(snap2.Counters[cluster.MetricRunsDispatched]), int(snap.Counters[cluster.MetricRunsDispatched]); got != before {
		t.Errorf("resubmission dispatched %d more runs, want 0", got-before)
	}
	if got := int(snap2.Counters[MetricRunsCached]); got < len(specs) {
		t.Errorf("runs_cached = %d after resubmission, want >= %d", got, len(specs))
	}
	after := 0
	for _, ws := range workers {
		after += int(ws.Registry().Snapshot().Counters[MetricRunsExecuted])
	}
	if after != executed {
		t.Errorf("workers executed %d more runs on resubmission, want 0", after-executed)
	}
	for i := range specs {
		got := fetchRun(t, coordTS, resub.ID, i)
		want := fetchRun(t, controlTS, control.ID, i)
		if string(got) != string(want) {
			t.Fatalf("run %d: deduplicated bytes differ from control", i)
		}
	}
}

// TestClusterHealthzRoles checks the cluster block both /healthz roles
// report — coordinators expose worker counts, workers name their
// coordinator — plus the status endpoint and the 503 a daemon returns
// for batch pushes when it never joined a cluster.
func TestClusterHealthzRoles(t *testing.T) {
	_, coordTS := newClusterNode(t, Options{})
	ws, wts := newClusterNode(t, Options{})
	if err := ws.JoinCluster(coordTS.URL, "w0", wts.URL); err != nil {
		t.Fatal(err)
	}

	var ch struct {
		Cluster cluster.Health `json:"cluster"`
	}
	getJSON(t, coordTS, "/healthz", &ch)
	if ch.Cluster.Role != "coordinator" || ch.Cluster.Workers != 1 {
		t.Fatalf("coordinator healthz cluster block = %+v", ch.Cluster)
	}
	getJSON(t, wts, "/healthz", &ch)
	if ch.Cluster.Role != "worker" || ch.Cluster.Coordinator != coordTS.URL {
		t.Fatalf("worker healthz cluster block = %+v", ch.Cluster)
	}

	var st cluster.Status
	getJSON(t, coordTS, "/cluster/status", &st)
	if len(st.Workers) != 1 || st.Workers[0].Name != "w0" || !st.Workers[0].Alive {
		t.Fatalf("cluster status = %+v", st)
	}

	// A daemon that never joined refuses pushed batches.
	resp, err := http.Post(coordTS.URL+"/cluster/batch", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch push to a non-worker: status %d, want 503", resp.StatusCode)
	}
}

// TestClusterKillWorker is the kill e2e (`make clustercheck`): a
// coordinator with three workers loses one to a hard kill mid-campaign
// — heartbeats stop, its open batch strands — and the campaign must
// still finish with every run resolved exactly once and byte-identical
// to a single-node control. Gated behind HOTGAUGE_CLUSTER_E2E because
// the lease-expiry wait makes it seconds-slow.
func TestClusterKillWorker(t *testing.T) {
	if os.Getenv("HOTGAUGE_CLUSTER_E2E") == "" {
		t.Skip("set HOTGAUGE_CLUSTER_E2E=1 (make clustercheck) to run the worker-kill e2e")
	}
	specs := clusterSpecs(12)

	_, controlTS := newTestServer(t, Options{})
	control := submit(t, controlTS, specs...)
	waitState(t, controlTS, control.ID, JobDone)

	coord, coordTS := newClusterNode(t, Options{
		ClusterLeaseTTL: 400 * time.Millisecond,
		ClusterBatch:    2,
	})
	workers := joinWorkers(t, coordTS, 3)
	waitFor(t, func() bool { return coord.Coordinator().AliveWorkers() == 3 }, "workers to join")

	// Widen the kill window deterministically: every worker-executed run
	// stalls briefly before its first step, so the victim dies with its
	// batch provably unfinished.
	for _, ws := range workers {
		stallRuns(ws, 120*time.Millisecond)
	}

	sub := submit(t, coordTS, specs...)

	// Kill the first worker that accepts a batch, while its runs stall.
	victim := -1
	waitFor(t, func() bool {
		for i, ws := range workers {
			if ws.Registry().Snapshot().Counters[cluster.MetricWorkerBatches] > 0 {
				victim = i
				return true
			}
		}
		return false
	}, "a worker to receive a batch")
	workers[victim].ClusterWorker().Kill()
	t.Logf("killed worker-%d mid-campaign", victim)

	waitState(t, coordTS, sub.ID, JobDone)

	for i := range specs {
		got := fetchRun(t, coordTS, sub.ID, i)
		want := fetchRun(t, controlTS, control.ID, i)
		if string(got) != string(want) {
			t.Fatalf("run %d: post-kill bytes differ from single-node control", i)
		}
	}

	snap := coord.Registry().Snapshot()
	if got := int(snap.Counters[cluster.MetricWorkersLost]); got < 1 {
		t.Errorf("workers_lost = %d, want >= 1", got)
	}
	// Exactly-once resolution: each of the 12 runs produced exactly one
	// accepted result (worker-posted or coordinator fallback); any late
	// duplicate a half-dead worker managed to post was dropped and
	// counted separately.
	if got := int(snap.Counters[cluster.MetricResultsReceived] +
		snap.Counters[cluster.MetricLocalRuns]); got != len(specs) {
		t.Errorf("results_received+local_runs = %d, want exactly %d", got, len(specs))
	}
}

// Quickstart: run one workload on one core of the 7 nm case-study
// processor and characterize its hotspot behaviour — the minimal
// end-to-end use of the HotGauge methodology.
package main

import (
	"fmt"
	"log"
	"math"

	"hotgauge"
)

func main() {
	prof, err := hotgauge.LookupWorkload("gcc")
	if err != nil {
		log.Fatal(err)
	}

	// 100 timesteps × 200 µs = 20 ms of execution on core 0 of the 7 nm
	// die, starting from the idle-warmup thermal state, recording the
	// MLTD and severity series.
	res, err := hotgauge.Run(hotgauge.Config{
		Floorplan: hotgauge.FloorplanConfig{Node: hotgauge.Node7},
		Workload:  prof,
		Core:      0,
		Warmup:    hotgauge.WarmupIdle,
		Steps:     100,
		Record:    hotgauge.RecordOptions{MLTD: true, Severity: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s on a 7nm client CPU (idle warmup)\n", prof.Name)
	if math.IsInf(res.TUH, 1) {
		fmt.Println("no hotspot within 20 ms")
	} else {
		fmt.Printf("time-until-hotspot: %.2f ms\n", res.TUH*1e3)
		h := res.FirstHotspots[0]
		fmt.Printf("first hotspot: (%.2f, %.2f) mm at %.1f C with MLTD %.1f C\n",
			h.X, h.Y, h.Temp, h.MLTD)
	}

	last := res.StepsRun - 1
	fmt.Printf("after 20 ms: max junction %.1f C, MLTD %.1f C, severity %.2f\n",
		res.MaxTemp[last], res.MLTD[last], res.Severity[last])

	// The severity metric is also directly usable as a pure function.
	fmt.Printf("sev(85C, 30C MLTD) = %.2f (0.5 means: mitigate now)\n",
		hotgauge.Severity(85, 30))
}

package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllSuiteProfilesValidate(t *testing.T) {
	profiles := SPEC2006()
	if len(profiles) != 29 {
		t.Fatalf("suite has %d profiles, want 29", len(profiles))
	}
	seen := map[string]bool{}
	for i := range profiles {
		p := &profiles[i]
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile name %s", p.Name)
		}
		seen[p.Name] = true
	}
	for _, extra := range []Profile{Idle(), AVXStress()} {
		if err := extra.Validate(); err != nil {
			t.Errorf("%s: %v", extra.Name, err)
		}
	}
}

func TestSeedsAreDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, p := range SPEC2006() {
		if other, dup := seen[p.Seed]; dup {
			t.Errorf("profiles %s and %s share seed %d", p.Name, other, p.Seed)
		}
		seen[p.Seed] = p.Name
	}
}

func TestLookup(t *testing.T) {
	p, err := Lookup("gobmk")
	if err != nil || p.Name != "gobmk" {
		t.Fatalf("Lookup(gobmk) = %v, %v", p.Name, err)
	}
	if _, err := Lookup("quake"); err == nil {
		t.Fatal("Lookup of unknown profile succeeded")
	}
	if p, err := Lookup("idle"); err != nil || p.Intensity > 0.2 {
		t.Fatalf("Lookup(idle) = %+v, %v", p, err)
	}
}

func TestValidationSetMatchesTableIII(t *testing.T) {
	vs := ValidationSet()
	want := []string{"bzip2", "gcc", "omnetpp", "povray", "hmmer"}
	if len(vs) != len(want) {
		t.Fatalf("validation set has %d entries", len(vs))
	}
	for i, p := range vs {
		if p.Name != want[i] {
			t.Errorf("validation[%d] = %s, want %s", i, p.Name, want[i])
		}
	}
}

func TestNormalizedMixSumsToOne(t *testing.T) {
	f := func(a, b, c, d, e, g, h float64) bool {
		m := InstrMix{IntALU: abs(a), CALU: abs(b), FP: abs(c), AVX: abs(d), Load: abs(e), Store: abs(g), Branch: abs(h)}
		n := m.Normalized()
		return math.Abs(n.Sum()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return math.Abs(math.Mod(v, 1000))
}

func TestParamsAtCyclesThroughPhases(t *testing.T) {
	p := Profile{
		Name: "x", Mix: intMix.Normalized(), ILP: 3, BranchPredictability: 0.9,
		WorkingSet: mib, StrideLocality: 0.5, MLP: 2, Intensity: 0.8,
		Phases: []Phase{{Timesteps: 2, Intensity: 0.5}, {Timesteps: 3, Intensity: 1.2}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.PhasePeriod() != 5 {
		t.Fatalf("period = %d", p.PhasePeriod())
	}
	wantIntensity := []float64{0.4, 0.4, 0.96, 0.96, 0.96, 0.4, 0.4} // cycles
	for step, want := range wantIntensity {
		got := p.ParamsAt(step).Intensity
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("step %d intensity = %v, want %v", step, got, want)
		}
	}
}

func TestParamsAtClampsIntensity(t *testing.T) {
	p := Idle()
	p.Intensity = 1.0
	p.Phases = []Phase{{Timesteps: 1, Intensity: 1.5}}
	if got := p.ParamsAt(0).Intensity; got != 1.2 {
		t.Fatalf("clamped intensity = %v, want 1.2", got)
	}
}

func TestPeakIntensityStep(t *testing.T) {
	p, _ := Lookup("tonto")
	peak := p.PeakIntensityStep()
	if peak < 700 || peak >= 750 {
		t.Fatalf("tonto peak step = %d, want within the late spike [700,750)", peak)
	}
	q, _ := Lookup("bzip2")
	if q.PeakIntensityStep() != 0 {
		t.Fatalf("steady profile peak step = %d, want 0", q.PeakIntensityStep())
	}
}

func TestStreamDeterminism(t *testing.T) {
	p, _ := Lookup("gcc")
	a, b := NewStream(p), NewStream(p)
	for i := 0; i < 10000; i++ {
		ua, ub := a.Next(), b.Next()
		if ua != ub {
			t.Fatalf("streams diverge at µop %d: %+v vs %+v", i, ua, ub)
		}
	}
}

func TestStreamMixMatchesProfile(t *testing.T) {
	p, _ := Lookup("milc")
	s := NewStream(p)
	const n = 200000
	var counts [numUopKinds]int
	for i := 0; i < n; i++ {
		counts[s.Next().Kind]++
	}
	m := p.Mix.Normalized()
	want := [numUopKinds]float64{m.IntALU, m.CALU, m.FP, m.AVX, m.Load, m.Store, m.Branch}
	for k := UopIntALU; k < numUopKinds; k++ {
		got := float64(counts[k]) / n
		if math.Abs(got-want[k]) > 0.01 {
			t.Errorf("kind %v frequency = %.4f, want %.4f", k, got, want[k])
		}
	}
}

func TestStreamDependencyDistanceMean(t *testing.T) {
	p, _ := Lookup("hmmer") // ILP 6.0
	s := NewStream(p)
	sum, n := 0.0, 0
	for i := 0; i < 100000; i++ {
		u := s.Next()
		if u.Dep1 > 0 {
			sum += float64(u.Dep1)
			n++
		}
	}
	mean := sum / float64(n)
	if mean < p.ILP*0.8 || mean > p.ILP*1.4 {
		t.Fatalf("mean dep distance = %.2f, want ≈ %.1f", mean, p.ILP)
	}
}

func TestStreamAddressesInsideWorkingSet(t *testing.T) {
	p, _ := Lookup("mcf")
	s := NewStream(p)
	for i := 0; i < 50000; i++ {
		u := s.Next()
		if u.Kind == UopLoad || u.Kind == UopStore {
			if u.Addr >= uint64(p.WorkingSet) {
				t.Fatalf("address %#x outside working set %#x", u.Addr, p.WorkingSet)
			}
		}
		if u.PC >= codeFootprint {
			t.Fatalf("PC %#x outside code footprint", u.PC)
		}
	}
}

func TestStreamBranchPredictabilityOrdering(t *testing.T) {
	// gobmk (0.82) must produce a less compressible branch stream than
	// libquantum (0.99). We use pattern-match rate against the stream's
	// own majority behaviour as a proxy.
	rate := func(name string) float64 {
		p, _ := Lookup(name)
		s := NewStream(p)
		taken := 0
		branches := 0
		// Agreement between consecutive same-history outcomes is high for
		// predictable streams; approximate with a tiny 2-bit counter table.
		var table [1024]int8
		var hist uint32
		correct := 0
		for branches < 30000 {
			u := s.Next()
			if u.Kind != UopBranch {
				continue
			}
			branches++
			if u.Taken {
				taken++
			}
			idx := (uint32(u.PC>>2) ^ hist) & 1023
			pred := table[idx] >= 0
			if pred == u.Taken {
				correct++
			}
			if u.Taken && table[idx] < 1 {
				table[idx]++
			} else if !u.Taken && table[idx] > -2 {
				table[idx]--
			}
			hist = (hist << 1) & 1023
			if u.Taken {
				hist |= 1
			}
		}
		return float64(correct) / float64(branches)
	}
	if rl, rg := rate("libquantum"), rate("gobmk"); rl <= rg {
		t.Fatalf("libquantum predictor rate %.3f not above gobmk %.3f", rl, rg)
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	if Noise(1, 2, 3) != Noise(1, 2, 3) {
		t.Fatal("Noise is not deterministic")
	}
	if Noise(1, 2, 3) == Noise(1, 3, 3) {
		t.Fatal("Noise ignores step")
	}
	for i := 0; i < 1000; i++ {
		v := Noise(42, i, 7)
		if v < 0 || v >= 1 {
			t.Fatalf("Noise out of range: %v", v)
		}
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 29 {
		t.Fatalf("Names() returned %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted at %d: %s >= %s", i, names[i-1], names[i])
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := Profile{
		Name: "ok", Mix: intMix.Normalized(), ILP: 3, BranchPredictability: 0.9,
		WorkingSet: mib, StrideLocality: 0.5, MLP: 2, Intensity: 0.8,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good profile rejected: %v", err)
	}
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Mix.IntALU += 0.5 },
		func(p *Profile) { p.ILP = 0.5 },
		func(p *Profile) { p.BranchPredictability = 1.5 },
		func(p *Profile) { p.WorkingSet = 0 },
		func(p *Profile) { p.StrideLocality = -0.1 },
		func(p *Profile) { p.MLP = 0 },
		func(p *Profile) { p.Intensity = 0 },
		func(p *Profile) { p.Phases = []Phase{{Timesteps: 0, Intensity: 1}} },
		func(p *Profile) { p.Phases = []Phase{{Timesteps: 5, Intensity: 2.0}} },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad profile accepted", i)
		}
	}
}

package core

import (
	"math"
	"sort"

	"hotgauge/internal/geometry"
)

// TrackedHotspot is one hotspot's life across frames: when it appeared,
// how long it lived, how hot and steep it got, and where it peaked.
// Durations are in timesteps; callers multiply by their timestep to get
// wall-clock.
type TrackedHotspot struct {
	ID        int
	FirstStep int
	LastStep  int     // last step the hotspot was observed
	Frames    int     // number of frames it was present (≥1)
	PeakTemp  float64 // hottest observed temperature [°C]
	PeakMLTD  float64 // steepest observed MLTD [°C]
	X, Y      float64 // location at the hottest observation [mm]
	// TravelMM is the total distance the hotspot's center moved over its
	// life [mm] — application phase changes drag hotspots across units.
	TravelMM float64

	lastX, lastY float64
}

// Duration returns the hotspot's lifetime in timesteps.
func (h *TrackedHotspot) Duration() int { return h.LastStep - h.FirstStep + 1 }

// Tracker associates detections across consecutive frames into hotspot
// lifetimes. Association is greedy nearest-neighbour within MatchRadius;
// a track that goes unmatched for one frame is closed (hotspots at these
// time scales do not flicker within 200 µs unless they truly collapsed).
type Tracker struct {
	analyzer *Analyzer
	// MatchRadius is the maximum distance [mm] a hotspot may move between
	// frames and still be the same hotspot.
	MatchRadius float64

	nextID int
	active []*TrackedHotspot
	closed []*TrackedHotspot
}

// NewTracker builds a tracker over the analyzer's definition.
func NewTracker(a *Analyzer, matchRadius float64) *Tracker {
	if matchRadius <= 0 {
		matchRadius = 0.5
	}
	return &Tracker{analyzer: a, MatchRadius: matchRadius}
}

// Observe detects hotspots in the frame and folds them into the tracks.
// It returns the frame's clustered detections.
func (t *Tracker) Observe(step int, f *geometry.Field) []Hotspot {
	detections := clusterHotspots(t.analyzer.Detect(f), t.MatchRadius/2)

	type pair struct {
		dist   float64
		track  int
		detect int
	}
	var pairs []pair
	for ti, tr := range t.active {
		for di, d := range detections {
			if dist := geometry.Dist(tr.lastX, tr.lastY, d.X, d.Y); dist <= t.MatchRadius {
				pairs = append(pairs, pair{dist, ti, di})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].dist < pairs[b].dist })

	usedTrack := make([]bool, len(t.active))
	usedDet := make([]bool, len(detections))
	for _, p := range pairs {
		if usedTrack[p.track] || usedDet[p.detect] {
			continue
		}
		usedTrack[p.track] = true
		usedDet[p.detect] = true
		t.extend(t.active[p.track], step, detections[p.detect])
	}

	// Unmatched tracks close; unmatched detections start new tracks.
	var stillActive []*TrackedHotspot
	for ti, tr := range t.active {
		if usedTrack[ti] {
			stillActive = append(stillActive, tr)
		} else {
			t.closed = append(t.closed, tr)
		}
	}
	t.active = stillActive
	for di, d := range detections {
		if usedDet[di] {
			continue
		}
		tr := &TrackedHotspot{
			ID: t.nextID, FirstStep: step, LastStep: step, Frames: 1,
			PeakTemp: d.Temp, PeakMLTD: d.MLTD, X: d.X, Y: d.Y,
			lastX: d.X, lastY: d.Y,
		}
		t.nextID++
		t.active = append(t.active, tr)
	}
	return detections
}

func (t *Tracker) extend(tr *TrackedHotspot, step int, d Hotspot) {
	tr.TravelMM += geometry.Dist(tr.lastX, tr.lastY, d.X, d.Y)
	tr.lastX, tr.lastY = d.X, d.Y
	tr.LastStep = step
	tr.Frames++
	if d.Temp > tr.PeakTemp {
		tr.PeakTemp = d.Temp
		tr.X, tr.Y = d.X, d.Y
	}
	tr.PeakMLTD = math.Max(tr.PeakMLTD, d.MLTD)
}

// clusterHotspots merges detections within `radius` mm of a hotter
// detection into it: plateau tops and saddle ridges produce several
// candidate cells for one physical hotspot, and tracking wants one
// representative per physical spot.
func clusterHotspots(hs []Hotspot, radius float64) []Hotspot {
	if len(hs) <= 1 {
		return hs
	}
	sort.Slice(hs, func(a, b int) bool { return hs[a].Temp > hs[b].Temp })
	var out []Hotspot
	for _, h := range hs {
		merged := false
		for _, kept := range out {
			if geometry.Dist(kept.X, kept.Y, h.X, h.Y) <= radius {
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, h)
		}
	}
	return out
}

// Finish closes all remaining tracks and returns every hotspot lifetime,
// ordered by first appearance then ID.
func (t *Tracker) Finish() []TrackedHotspot {
	all := append(append([]*TrackedHotspot{}, t.closed...), t.active...)
	t.active = nil
	sort.Slice(all, func(a, b int) bool {
		if all[a].FirstStep != all[b].FirstStep {
			return all[a].FirstStep < all[b].FirstStep
		}
		return all[a].ID < all[b].ID
	})
	out := make([]TrackedHotspot, len(all))
	for i, h := range all {
		out[i] = *h
	}
	return out
}

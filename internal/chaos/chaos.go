package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"hotgauge/internal/obs"
)

// Options configures a Transport.
type Options struct {
	// Self names this endpoint in partition schedules ("coordinator",
	// "worker-1", ...).
	Self string
	// Profile is the chaos schedule to impose.
	Profile Profile
	// Seed drives every random draw; the same profile, seed and request
	// sequence replays the same faults.
	Seed int64
	// Registry receives the chaos/* counters (nil = a fresh one).
	Registry *obs.Registry
	// Next performs the real round trips (nil = http.DefaultTransport).
	Next http.RoundTripper
	// Clock overrides time.Now for partition windows (tests).
	Clock func() time.Time
}

// Transport is a fault-injecting http.RoundTripper: it imposes the
// Profile's latency, drops, duplicates, corruption, truncation and
// partitions on every request, deterministically from the seed. Peer
// endpoints are registered by name with AddPeer as their dynamically
// assigned addresses become known (a join callback on the coordinator,
// the -join flag on a worker), which is what lets a schedule written
// against names like "worker-1" apply to httptest- or OS-assigned
// ports. Safe for concurrent use.
type Transport struct {
	opts  Options
	next  http.RoundTripper
	clock func() time.Time
	start time.Time

	mu    sync.Mutex
	rng   *rand.Rand
	peers map[string]string // endpoint name → host:port

	mRequests, mDropReq, mDropResp *obs.Counter
	mDelayed, mDuplicated          *obs.Counter
	mCorrupted, mTruncated         *obs.Counter
	mPartitioned                   *obs.Counter
}

// New creates a Transport. The partition clock starts now: window
// offsets in the profile are relative to this call.
func New(o Options) *Transport {
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.Next == nil {
		o.Next = http.DefaultTransport
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	reg := o.Registry
	return &Transport{
		opts:         o,
		next:         o.Next,
		clock:        o.Clock,
		start:        o.Clock(),
		rng:          rand.New(rand.NewSource(o.Seed)),
		peers:        map[string]string{},
		mRequests:    reg.Counter(MetricRequests),
		mDropReq:     reg.Counter(MetricDroppedRequests),
		mDropResp:    reg.Counter(MetricDroppedResponses),
		mDelayed:     reg.Counter(MetricDelayed),
		mDuplicated:  reg.Counter(MetricDuplicated),
		mCorrupted:   reg.Counter(MetricCorrupted),
		mTruncated:   reg.Counter(MetricTruncated),
		mPartitioned: reg.Counter(MetricPartitioned),
	}
}

// AddPeer binds an endpoint name to an address (a base URL or bare
// host:port), so partition schedules written against names resolve the
// dynamically assigned ports behind them. Re-binding a name replaces
// its address.
func (t *Transport) AddPeer(name, addr string) {
	host := addr
	if strings.Contains(addr, "://") {
		if u, err := url.Parse(addr); err == nil && u.Host != "" {
			host = u.Host
		}
	}
	t.mu.Lock()
	t.peers[name] = host
	t.mu.Unlock()
}

// peerNameLocked reverse-maps a request's host to its endpoint name;
// unknown hosts keep their host:port as the name (so "*" rules still
// apply to them).
func (t *Transport) peerNameLocked(host string) string {
	for name, h := range t.peers {
		if h == host {
			return name
		}
	}
	return host
}

// partitionedLocked reports whether an active window cuts self→dest.
func (t *Transport) partitionedLocked(dest string, elapsed time.Duration) bool {
	ms := elapsed.Milliseconds()
	match := func(rule, name string) bool { return rule == "*" || rule == name }
	for _, p := range t.opts.Profile.Partitions {
		if ms < p.StartMS || (p.EndMS != 0 && ms >= p.EndMS) {
			continue
		}
		if match(p.From, t.opts.Self) && match(p.To, dest) {
			return true
		}
		if !p.OneWay && match(p.From, dest) && match(p.To, t.opts.Self) {
			return true
		}
	}
	return false
}

// draw runs one seeded rate check.
func (t *Transport) draw(rate float64) bool {
	if rate <= 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Float64() < rate
}

// RoundTrip implements http.RoundTripper. Fault order models a real
// link: partition first (nothing crosses a cut), then latency, then a
// request-side drop, then body mutations (corrupt, truncate) and
// duplicate delivery, then a response-side drop — the peer has acted
// but the sender never learns.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mRequests.Inc()
	prof := t.opts.Profile

	t.mu.Lock()
	dest := t.peerNameLocked(req.URL.Host)
	elapsed := t.clock().Sub(t.start)
	cut := t.partitionedLocked(dest, elapsed)
	t.mu.Unlock()
	if cut {
		t.mPartitioned.Inc()
		return nil, fmt.Errorf("chaos: partition %s → %s active", t.opts.Self, dest)
	}

	if prof.LatencyMS > 0 || prof.LatencyJitterMS > 0 {
		d := time.Duration(prof.LatencyMS) * time.Millisecond
		if prof.LatencyJitterMS > 0 {
			t.mu.Lock()
			d += time.Duration(t.rng.Int63n(prof.LatencyJitterMS+1)) * time.Millisecond
			t.mu.Unlock()
		}
		t.mDelayed.Inc()
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}

	if t.draw(prof.DropRate) {
		t.mDropReq.Inc()
		return nil, fmt.Errorf("chaos: request %s → %s dropped", t.opts.Self, dest)
	}

	var body []byte
	if req.Body != nil {
		b, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		body = b
	}

	if len(body) > 0 && t.draw(prof.CorruptRate) {
		t.mCorrupted.Inc()
		body = append([]byte(nil), body...)
		t.mu.Lock()
		i := t.rng.Intn(len(body))
		bit := byte(1) << uint(t.rng.Intn(8))
		t.mu.Unlock()
		body[i] ^= bit
	}
	if len(body) > 0 && t.draw(prof.TruncateRate) {
		t.mTruncated.Inc()
		t.mu.Lock()
		n := t.rng.Intn(len(body))
		t.mu.Unlock()
		body = body[:n]
	}

	if t.draw(prof.DupRate) {
		t.mDuplicated.Inc()
		if resp, err := t.send(req, body); err == nil {
			// First delivery of the pair: the peer processes it, the
			// sender only sees the second response.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	resp, err := t.send(req, body)
	if err != nil {
		return nil, err
	}

	if t.draw(prof.ResponseDropRate) {
		t.mDropResp.Inc()
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("chaos: response %s → %s dropped", dest, t.opts.Self)
	}
	return resp, nil
}

// send performs one real round trip with the (possibly mutated) body.
func (t *Transport) send(req *http.Request, body []byte) (*http.Response, error) {
	r := req.Clone(req.Context())
	if req.Body != nil {
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
	}
	return t.next.RoundTrip(r)
}

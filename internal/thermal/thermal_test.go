package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hotgauge/internal/floorplan"
	"hotgauge/internal/geometry"
	"hotgauge/internal/tech"
)

// testDie is a small die for fast tests (2×1.5 mm at 100 µm → 20×15 cells).
var testDie = geometry.Rect{W: 2.0, H: 1.5}

func newTestGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := NewGrid(testDie, DefaultResolution, DefaultStack(), SinkConductance, DefaultAmbient)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// uniformField fills one power frame with a uniform total.
func uniformField(g *Grid, total float64) *geometry.Field {
	f := geometry.NewField(g.NX, g.NY, g.Dx*1e3)
	per := total / float64(g.NX*g.NY)
	for i := range f.Data {
		f.Data[i] = per
	}
	return f
}

// uniformPower wraps a uniform frame per active plane, splitting the
// total evenly — for legacy single-die grids this is one frame holding
// the whole total.
func uniformPower(g *Grid, total float64) *Power {
	frames := make([]*geometry.Field, g.ActiveLayers())
	for i := range frames {
		frames[i] = uniformField(g, total/float64(len(frames)))
	}
	return NewPower(frames...)
}

func TestNewGridErrors(t *testing.T) {
	stack := DefaultStack()
	cases := []struct {
		name string
		fn   func() error
	}{
		{"empty die", func() error {
			_, err := NewGrid(geometry.Rect{}, 0.1, stack, SinkConductance, 40)
			return err
		}},
		{"bad resolution", func() error {
			_, err := NewGrid(testDie, -1, stack, SinkConductance, 40)
			return err
		}},
		{"too coarse", func() error {
			_, err := NewGrid(testDie, 5, stack, SinkConductance, 40)
			return err
		}},
		{"empty stack", func() error {
			_, err := NewGrid(testDie, 0.1, nil, SinkConductance, 40)
			return err
		}},
		{"bad layer", func() error {
			bad := DefaultStack()
			bad[0].Conductivity = 0
			_, err := NewGrid(testDie, 0.1, bad, SinkConductance, 40)
			return err
		}},
		{"bad sink", func() error {
			_, err := NewGrid(testDie, 0.1, stack, 0, 40)
			return err
		}},
	}
	for _, c := range cases {
		if c.fn() == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestGridSublayerExpansion(t *testing.T) {
	g := newTestGrid(t)
	// Default stack: 1 + 2 + 1 + 2 + 1 + 2 = 9 grid layers.
	if g.NL != 9 {
		t.Fatalf("NL = %d, want 9", g.NL)
	}
	if g.LayerName(0) != "silicon-active" || g.LayerName(8) != "heatsink" {
		t.Fatalf("layer names wrong: %s .. %s", g.LayerName(0), g.LayerName(8))
	}
}

func TestStableStepPositiveAndSmall(t *testing.T) {
	g := newTestGrid(t)
	dt := g.StableStep()
	if dt <= 0 || dt > 1e-3 {
		t.Fatalf("stable step = %v s", dt)
	}
}

func TestExplicitEnergyConservation(t *testing.T) {
	// Over a short interval from ambient, convective losses are second
	// order, so stored energy must equal injected energy.
	g := newTestGrid(t)
	s := g.NewState(DefaultAmbient)
	var e Explicit
	const P, dt = 10.0, 200e-6
	if err := e.Step(g, s, uniformPower(g, P), dt); err != nil {
		t.Fatal(err)
	}
	injected := P * dt
	stored := g.EnergyAbove(s, DefaultAmbient)
	if math.Abs(stored-injected)/injected > 0.01 {
		t.Fatalf("stored %.4g J vs injected %.4g J", stored, injected)
	}
}

func TestExplicitHeatingIsMonotone(t *testing.T) {
	g := newTestGrid(t)
	s := g.NewState(DefaultAmbient)
	var e Explicit
	p := uniformPower(g, 15)
	prev := g.MeanTemp(s)
	for i := 0; i < 20; i++ {
		if err := e.Step(g, s, p, 200e-6); err != nil {
			t.Fatal(err)
		}
		cur := g.MeanTemp(s)
		if cur <= prev {
			t.Fatalf("mean temp not increasing at step %d: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
}

func TestExplicitCoolsTowardAmbientWithoutPower(t *testing.T) {
	g := newTestGrid(t)
	s := g.NewState(90)
	var e Explicit
	zero := uniformPower(g, 0)
	for i := 0; i < 200; i++ {
		if err := e.Step(g, s, zero, 1e-3); err != nil {
			t.Fatal(err)
		}
	}
	// The heatsink's thermal time constant is seconds, so 0.2 s of
	// cooling only moves the stack a little — but it must move down,
	// monotonically, and never undershoot ambient.
	if m := g.MeanTemp(s); m >= 90 || m < DefaultAmbient-1e-6 {
		t.Fatalf("after cooling, mean temp = %v", m)
	}
	if mx := g.MaxTemp(s); mx >= 90 {
		t.Fatalf("max temp did not decrease: %v", mx)
	}
}

func TestSteadyMatchesWarmStartForUniformPower(t *testing.T) {
	// With uniform power the laterally-averaged analytic solution is the
	// exact steady state; SOR must terminate immediately on it.
	g := newTestGrid(t)
	s := g.NewState(DefaultAmbient)
	p := uniformPower(g, 12)
	if err := WarmStart(g, s, p); err != nil {
		t.Fatal(err)
	}
	ref := s.Clone()
	iters, err := SolveSteady(g, s, p, 1e-6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if iters > 50 {
		t.Fatalf("SOR took %d iterations from the exact solution", iters)
	}
	for i := range s.T {
		if math.Abs(s.T[i]-ref.T[i]) > 0.05 {
			t.Fatalf("steady solution deviates from analytic at %d: %v vs %v", i, s.T[i], ref.T[i])
		}
	}
}

func TestSteadyStateBalance(t *testing.T) {
	// In steady state, injected power must leave through the sink:
	// P = gConv · Σ(T_top - ambient).
	g := newTestGrid(t)
	s := g.NewState(DefaultAmbient)
	p := uniformPower(g, 8)
	if err := WarmStart(g, s, p); err != nil {
		t.Fatal(err)
	}
	if _, err := SolveSteady(g, s, p, 1e-7, 0); err != nil {
		t.Fatal(err)
	}
	out := 0.0
	top := (g.NL - 1) * g.NX * g.NY
	for i := 0; i < g.NX*g.NY; i++ {
		out += g.gConv * (s.T[top+i] - g.Ambient)
	}
	if math.Abs(out-8)/8 > 0.01 {
		t.Fatalf("steady outflow %.3f W, want 8 W", out)
	}
}

func TestPointSourceProducesLocalizedPeak(t *testing.T) {
	g := newTestGrid(t)
	s := g.NewState(DefaultAmbient)
	p := geometry.NewField(g.NX, g.NY, g.Dx*1e3)
	cx, cy := g.NX/2, g.NY/2
	p.Set(cx, cy, 2.0) // 2 W in one 100 µm cell
	var e Explicit
	for i := 0; i < 10; i++ {
		if err := e.Step(g, s, NewPower(p), 200e-6); err != nil {
			t.Fatal(err)
		}
	}
	f := g.ActiveField(s)
	_, mx, my := f.Max()
	if mx != cx || my != cy {
		t.Fatalf("peak at (%d,%d), want (%d,%d)", mx, my, cx, cy)
	}
	// Temperature must decay monotonically along the +x ray.
	for ix := cx; ix < g.NX-1; ix++ {
		if f.At(ix+1, cy) >= f.At(ix, cy) {
			t.Fatalf("no decay from (%d) to (%d)", ix, ix+1)
		}
	}
}

func TestSymmetryPreserved(t *testing.T) {
	g := newTestGrid(t)
	s := g.NewState(DefaultAmbient)
	p := geometry.NewField(g.NX, g.NY, g.Dx*1e3)
	// Mirror-symmetric pair of sources about the vertical midline.
	p.Set(3, g.NY/2, 1.0)
	p.Set(g.NX-1-3, g.NY/2, 1.0)
	var e Explicit
	for i := 0; i < 15; i++ {
		if err := e.Step(g, s, NewPower(p), 200e-6); err != nil {
			t.Fatal(err)
		}
	}
	f := g.ActiveField(s)
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			a, b := f.At(ix, iy), f.At(g.NX-1-ix, iy)
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("asymmetry at (%d,%d): %v vs %v", ix, iy, a, b)
			}
		}
	}
}

func TestImplicitMatchesExplicit(t *testing.T) {
	g := newTestGrid(t)
	p := geometry.NewField(g.NX, g.NY, g.Dx*1e3)
	p.Set(g.NX/3, g.NY/3, 1.5)
	p.Set(2*g.NX/3, g.NY/2, 0.8)

	se := g.NewState(DefaultAmbient)
	si := g.NewState(DefaultAmbient)
	var ex Explicit
	im := Implicit{MaxIters: 200, Tol: 1e-7}
	pw := NewPower(p)
	for i := 0; i < 10; i++ {
		if err := ex.Step(g, se, pw, 100e-6); err != nil {
			t.Fatal(err)
		}
		if err := im.Step(g, si, pw, 100e-6); err != nil {
			t.Fatal(err)
		}
	}
	fe, fi := g.ActiveField(se), g.ActiveField(si)
	for i := range fe.Data {
		if d := math.Abs(fe.Data[i] - fi.Data[i]); d > 0.5 {
			t.Fatalf("solvers disagree by %.2f °C at cell %d (T=%.2f vs %.2f)",
				d, i, fe.Data[i], fi.Data[i])
		}
	}
}

func TestImplicitStableAtHugeTimestep(t *testing.T) {
	g := newTestGrid(t)
	s := g.NewState(DefaultAmbient)
	im := Implicit{}
	p := uniformPower(g, 10)
	// One 50 ms step: far beyond the explicit stability bound.
	if err := im.Step(g, s, p, 50e-3); err != nil {
		t.Fatal(err)
	}
	for _, v := range s.T {
		if math.IsNaN(v) || v < DefaultAmbient-1 || v > 500 {
			t.Fatalf("implicit produced unphysical temperature %v", v)
		}
	}
}

func TestPsiMatchesTableIV(t *testing.T) {
	want := map[tech.Node]float64{tech.Node14: 0.96, tech.Node10: 1.13, tech.Node7: 1.40}
	prev := 0.0
	for _, node := range tech.Nodes() {
		fp, err := floorplan.New(floorplan.Config{Node: node})
		if err != nil {
			t.Fatal(err)
		}
		psi, err := Psi(fp.Die, DefaultResolution)
		if err != nil {
			t.Fatal(err)
		}
		// The stack is calibrated to favour junction-local hotspot
		// fidelity (Fig. 1/9 gradients) over exact Ψ at the smallest die,
		// so the 7 nm point runs somewhat high; the node trend is the
		// validated property.
		if rel := math.Abs(psi-want[node]) / want[node]; rel > 0.20 {
			t.Errorf("%v: Ψ = %.2f, want %.2f ±20%%", node, psi, want[node])
		}
		if psi <= prev {
			t.Errorf("Ψ must increase with newer nodes; %v gave %.2f after %.2f", node, psi, prev)
		}
		prev = psi
		tdp := TDP(psi)
		if tdp < 35 || tdp > 70 {
			t.Errorf("%v: TDP %.0f W outside the paper's 43-63 W class", node, tdp)
		}
	}
}

func TestActiveFieldRoundTrip(t *testing.T) {
	g := newTestGrid(t)
	s := g.NewState(40)
	f := geometry.NewField(g.NX, g.NY, g.Dx*1e3)
	for i := range f.Data {
		f.Data[i] = 40 + float64(i%13)
	}
	if err := g.SetActiveField(s, f); err != nil {
		t.Fatal(err)
	}
	got := g.ActiveField(s)
	for i := range f.Data {
		if got.Data[i] != f.Data[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	bad := geometry.NewField(3, 3, 0.1)
	if err := g.SetActiveField(s, bad); err == nil {
		t.Fatal("mismatched field accepted")
	}
}

func TestSolverRejectsBadInput(t *testing.T) {
	g := newTestGrid(t)
	s := g.NewState(40)
	var e Explicit
	if err := e.Step(g, s, nil, 1e-4); err == nil {
		t.Fatal("nil power accepted")
	}
	if err := e.Step(g, s, uniformPower(g, 1), -1); err == nil {
		t.Fatal("negative dt accepted")
	}
	var im Implicit
	if err := im.Step(g, s, nil, 1e-4); err == nil {
		t.Fatal("implicit: nil power accepted")
	}
}

func TestHotspotDecaysWithin200Microseconds(t *testing.T) {
	// The paper's premise: local heat injection changes junction
	// temperature measurably within a single 200 µs timestep — hotspots
	// are FAST. Verify the active layer heats by several °C in one step
	// under a realistic unit power density.
	g := newTestGrid(t)
	s := g.NewState(DefaultAmbient)
	p := geometry.NewField(g.NX, g.NY, g.Dx*1e3)
	// 0.2 W into one cell ≈ 20 W/mm²: a hot 7nm execution-unit density.
	p.Set(g.NX/2, g.NY/2, 0.2)
	var e Explicit
	if err := e.Step(g, s, NewPower(p), 200e-6); err != nil {
		t.Fatal(err)
	}
	rise := g.MaxTemp(s) - DefaultAmbient
	if rise < 2 {
		t.Fatalf("junction rise after one timestep = %.2f °C; hotspots should be fast", rise)
	}
}

func TestCoolingVariantsPsiOrdering(t *testing.T) {
	psiWith := func(stack []Layer, sinkG float64) float64 {
		g, err := NewGrid(testDie, DefaultResolution, stack, sinkG, DefaultAmbient)
		if err != nil {
			t.Fatal(err)
		}
		p := uniformPower(g, 10)
		s := g.NewState(DefaultAmbient)
		if err := WarmStart(g, s, p); err != nil {
			t.Fatal(err)
		}
		if _, err := SolveSteady(g, s, p, 1e-6, 0); err != nil {
			t.Fatal(err)
		}
		return (g.MeanTemp(s) - DefaultAmbient) / 10
	}
	liquid := psiWith(LiquidCooledStack(), LiquidSinkConductance)
	active := psiWith(DefaultStack(), SinkConductance)
	passive := psiWith(PassiveStack(), PassiveSinkConductance)
	if !(liquid < active && active < passive) {
		t.Fatalf("cooling Ψ ordering broken: liquid %.2f, active %.2f, passive %.2f", liquid, active, passive)
	}
}

func TestEnergyConservationProperty(t *testing.T) {
	// For ANY non-negative power map, a short explicit step from ambient
	// stores exactly the injected energy (convection is second-order when
	// the stack starts at ambient).
	g := newTestGrid(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := geometry.NewField(g.NX, g.NY, g.Dx*1e3)
		total := 0.0
		for i := range p.Data {
			if rng.Float64() < 0.1 { // sparse hot units
				p.Data[i] = rng.Float64() * 0.5
				total += p.Data[i]
			}
		}
		if total == 0 {
			return true
		}
		s := g.NewState(DefaultAmbient)
		var e Explicit
		if err := e.Step(g, s, NewPower(p), 200e-6); err != nil {
			return false
		}
		injected := total * 200e-6
		stored := g.EnergyAbove(s, DefaultAmbient)
		return math.Abs(stored-injected)/injected < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSteadyBalanceProperty(t *testing.T) {
	// For ANY power map, steady-state outflow through the sink equals the
	// injected power.
	g := newTestGrid(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := geometry.NewField(g.NX, g.NY, g.Dx*1e3)
		total := 0.0
		for i := range p.Data {
			p.Data[i] = rng.Float64() * 0.05
			total += p.Data[i]
		}
		s := g.NewState(DefaultAmbient)
		pw := NewPower(p)
		if err := WarmStart(g, s, pw); err != nil {
			return false
		}
		if _, err := SolveSteady(g, s, pw, 1e-7, 0); err != nil {
			return false
		}
		out := 0.0
		top := (g.NL - 1) * g.NX * g.NY
		for i := 0; i < g.NX*g.NY; i++ {
			out += g.gConv * (s.T[top+i] - g.Ambient)
		}
		return math.Abs(out-total)/total < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

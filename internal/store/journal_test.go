package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// replayAll opens the journal and collects every intact record.
func replayAll(t *testing.T, dir string) [][]byte {
	t.Helper()
	j, err := OpenJournal(JournalOptions{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var got [][]byte
	if err := j.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalOptions{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestJournalReplayBeforeAppendExtendsCleanly(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalOptions{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// A second process: replay, then keep appending to the same journal.
	j2, err := OpenJournal(JournalOptions{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := j2.Replay(func([]byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records, want 1", n)
	}
	if err := j2.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	got := replayAll(t, dir)
	if len(got) != 2 || string(got[0]) != "one" || string(got[1]) != "two" {
		t.Fatalf("replay after reopen = %q", got)
	}
}

func TestJournalSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalOptions{Dir: dir, Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 24) // 32 bytes framed: 2 per segment
	const total = 9
	for i := 0; i < total; i++ {
		if err := j.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if sc := j.SegmentCount(); sc < 3 {
		t.Fatalf("SegmentCount = %d after %d oversized appends, want >= 3", sc, total)
	}
	j.Close()
	if got := replayAll(t, dir); len(got) != total {
		t.Fatalf("replayed %d records across segments, want %d", len(got), total)
	}
}

func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalOptions{Dir: dir, Sync: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := j.Append([]byte(fmt.Sprintf("old-%02d-padding-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	live := [][]byte{[]byte("live-1"), []byte("live-2")}
	if err := j.Compact(live); err != nil {
		t.Fatal(err)
	}
	if sc := j.SegmentCount(); sc != 1 {
		t.Fatalf("SegmentCount after compaction = %d, want 1", sc)
	}
	// Post-compaction appends extend the compacted segment.
	if err := j.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	got := replayAll(t, dir)
	want := []string{"live-1", "live-2", "after"}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records after compaction, want %d", len(got), len(want))
	}
	for i, w := range want {
		if string(got[i]) != w {
			t.Fatalf("record %d = %q, want %q", i, got[i], w)
		}
	}
}

// frame builds the on-disk bytes of a segment holding the payloads.
func frame(payloads ...[]byte) []byte {
	var buf []byte
	for _, p := range payloads {
		var hdr [recordHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p, castagnoli))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p...)
	}
	return buf
}

// writeTestSegment writes a fully intact segment by hand (no Journal),
// returning the path and the framed bytes.
func writeTestSegment(t *testing.T, dir string, payloads ...[]byte) (string, []byte) {
	t.Helper()
	buf := frame(payloads...)
	path := filepath.Join(dir, segmentPrefix+"00000001"+segmentSuffix)
	if err := os.WriteFile(path, buf, 0o666); err != nil {
		t.Fatal(err)
	}
	return path, buf
}

func TestJournalTornTailTruncated(t *testing.T) {
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	for cut := 1; cut < recordHeader+len("gamma"); cut++ {
		dir := t.TempDir()
		path, buf := writeTestSegment(t, dir, recs...)
		// Tear the tail mid-record: a crash between write and flush.
		if err := os.Truncate(path, int64(len(buf)-cut)); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, dir)
		if len(got) != 2 || string(got[0]) != "alpha" || string(got[1]) != "beta" {
			t.Fatalf("cut=%d: replay = %q, want the intact [alpha beta] prefix", cut, got)
		}
		// The truncation repaired the file: a second replay sees the same
		// prefix and the segment ends exactly on a record boundary.
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		wantSize := int64(2*recordHeader + len("alpha") + len("beta"))
		if fi.Size() != wantSize {
			t.Fatalf("cut=%d: repaired size = %d, want %d", cut, fi.Size(), wantSize)
		}
	}
}

// TestJournalBitFlips flips every byte of a framed segment in turn and
// asserts replay never panics, never invents records, and always
// recovers the intact prefix before the damaged record.
func TestJournalBitFlips(t *testing.T) {
	recs := [][]byte{[]byte("rec-one"), []byte("rec-two"), []byte("rec-three")}
	lens := []int{len("rec-one"), len("rec-two"), len("rec-three")}
	clean := frame(recs...)

	for pos := 0; pos < len(clean); pos++ {
		for _, flip := range []byte{0x01, 0x80, 0xFF} {
			dir := t.TempDir()
			path, _ := writeTestSegment(t, dir, recs...)
			data := append([]byte(nil), clean...)
			data[pos] ^= flip
			if err := os.WriteFile(path, data, 0o666); err != nil {
				t.Fatal(err)
			}

			// Which record does the damaged byte land in?
			rec, off := 0, 0
			for rec < len(lens) && pos >= off+recordHeader+lens[rec] {
				off += recordHeader + lens[rec]
				rec++
			}

			got := replayAll(t, dir)
			if len(got) < rec {
				t.Fatalf("pos=%d flip=%#x: replay lost intact prefix: got %d records, want >= %d",
					pos, flip, len(got), rec)
			}
			for i := 0; i < rec; i++ {
				if !bytes.Equal(got[i], recs[i]) {
					t.Fatalf("pos=%d flip=%#x: prefix record %d = %q, want %q",
						pos, flip, i, got[i], recs[i])
				}
			}
			for i := rec; i < len(got); i++ {
				// Anything replayed at or past the damaged record must
				// still be a genuine record (CRC cannot be fooled by our
				// single-byte flip on its own payload; a flipped length
				// may terminate earlier, which is fine).
				if i >= len(recs) || !bytes.Equal(got[i], recs[i]) {
					t.Fatalf("pos=%d flip=%#x: replay invented record %d = %q", pos, flip, i, got[i])
				}
			}
		}
	}
}

func TestJournalSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(string(pol), func(t *testing.T) {
			dir := t.TempDir()
			j, err := OpenJournal(JournalOptions{Dir: dir, Sync: pol})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := j.Append([]byte(fmt.Sprintf("p-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Err(); err != nil {
				t.Fatalf("Err after successful appends = %v", err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if got := replayAll(t, dir); len(got) != 10 {
				t.Fatalf("replayed %d records, want 10", len(got))
			}
		})
	}
}

func TestJournalStickyErrorAndRecovery(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalOptions{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(nil); err == nil {
		t.Fatal("Append(nil) succeeded, want error")
	}
	if j.Err() == nil {
		t.Fatal("Err not sticky after failed append")
	}
	if err := j.Append([]byte("fine")); err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatalf("Err not cleared by successful append: %v", err)
	}
}

func TestJournalClosedOperations(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if err := j.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := j.Compact(nil); err != ErrClosed {
		t.Fatalf("Compact after Close = %v, want ErrClosed", err)
	}
	if err := j.Replay(func([]byte) error { return nil }); err != ErrClosed {
		t.Fatalf("Replay after Close = %v, want ErrClosed", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"": SyncInterval, "always": SyncAlways, "interval": SyncInterval, "never": SyncNever,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted an unknown policy")
	}
}

// FuzzJournalReplay feeds arbitrary bytes as a segment file: replay must
// never panic, and a second replay after the repair truncation must see
// exactly the records the first one saw (replay is idempotent on any
// input).
func FuzzJournalReplay(f *testing.F) {
	clean := frame([]byte("seed-a"), []byte("seed-b"))
	f.Add(clean)
	f.Add(clean[:len(clean)-3])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segmentPrefix+"00000001"+segmentSuffix)
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Skip()
		}
		first := replayAllF(t, dir)
		second := replayAllF(t, dir)
		if len(first) != len(second) {
			t.Fatalf("replay not stable after repair: %d then %d records", len(first), len(second))
		}
		for i := range first {
			if !bytes.Equal(first[i], second[i]) {
				t.Fatalf("record %d changed across replays", i)
			}
		}
	})
}

// replayAllF is replayAll for fuzz targets (testing.F lacks TempDir on
// the inner *testing.T helper chain otherwise used).
func replayAllF(t *testing.T, dir string) [][]byte {
	j, err := OpenJournal(JournalOptions{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var got [][]byte
	if err := j.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

package hotgauge_test

import (
	"fmt"

	"hotgauge"
)

// The severity metric is a pure function of temperature and MLTD (Eq. 2).
func ExampleSeverity() {
	fmt.Printf("cool, flat die:        %.2f\n", hotgauge.Severity(45, 2))
	fmt.Printf("hotspot threshold:     %.2f\n", hotgauge.Severity(80, 25))
	fmt.Printf("damage imminent:       %.2f\n", hotgauge.Severity(120, 40))
	// Output:
	// cool, flat die:        0.00
	// hotspot threshold:     0.70
	// damage imminent:       1.00
}

// A minimal co-simulation: run gcc on the 7 nm die for 2 ms and report
// whether a hotspot formed. A coarse grid keeps the example fast.
func ExampleRun() {
	prof, err := hotgauge.LookupWorkload("gcc")
	if err != nil {
		panic(err)
	}
	res, err := hotgauge.Run(hotgauge.Config{
		Floorplan:  hotgauge.FloorplanConfig{Node: hotgauge.Node7},
		Workload:   prof,
		Warmup:     hotgauge.WarmupIdle,
		Steps:      10,
		Resolution: 0.2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("simulated %d steps of %.0f us\n", res.StepsRun, hotgauge.Timestep*1e6)
	fmt.Printf("hotspot formed: %v\n", res.TUHStep >= 0)
	// Output:
	// simulated 10 steps of 200 us
	// hotspot formed: true
}

// Hotspot detection on a hand-built temperature field.
func ExampleAnalyzer() {
	// A 3x3 mm die at 100 µm resolution: warm background with one hot,
	// steep bump.
	field := &hotgauge.Field{NX: 30, NY: 30, Dx: 0.1, Data: make([]float64, 900)}
	for i := range field.Data {
		field.Data[i] = 60
	}
	field.Set(15, 15, 105)

	analyzer, err := hotgauge.NewAnalyzer(field, hotgauge.DefaultHotspotDefinition())
	if err != nil {
		panic(err)
	}
	for _, h := range analyzer.Detect(field) {
		fmt.Printf("hotspot at (%.2f, %.2f) mm: %.0f C, MLTD %.0f C\n", h.X, h.Y, h.Temp, h.MLTD)
	}
	// Output:
	// hotspot at (1.55, 1.55) mm: 105 C, MLTD 45 C
}

// Instrumenting a run: a Metrics registry records per-stage wall time
// and per-run counters; Snapshot serializes them (the CLIs' -metrics-json).
func ExampleNewMetrics() {
	prof, err := hotgauge.LookupWorkload("gcc")
	if err != nil {
		panic(err)
	}
	metrics := hotgauge.NewMetrics()
	res, err := hotgauge.Run(hotgauge.Config{
		Floorplan:  hotgauge.FloorplanConfig{Node: hotgauge.Node7},
		Workload:   prof,
		Steps:      5,
		Resolution: 0.2,
		Obs:        metrics,
	})
	if err != nil {
		panic(err)
	}
	snap := metrics.Snapshot()
	fmt.Printf("steps counted: %d (ran %d)\n", snap.Counters["sim/steps"], res.StepsRun)
	fmt.Printf("thermal substeps > steps: %v\n", snap.Counters["thermal/substeps"] > snap.Counters["sim/steps"])
	fmt.Printf("stages timed: %d\n", len(snap.Stages("sim/stage/")))
	// Output:
	// steps counted: 5 (ran 5)
	// thermal substeps > steps: true
	// stages timed: 6
}

// RunAllOpts reports live campaign progress and joins all failures.
func ExampleRunAllOpts() {
	prof, err := hotgauge.LookupWorkload("gcc")
	if err != nil {
		panic(err)
	}
	base := hotgauge.Config{
		Floorplan:  hotgauge.FloorplanConfig{Node: hotgauge.Node7},
		Workload:   prof,
		Steps:      3,
		Resolution: 0.2,
	}
	cfgs := []hotgauge.Config{base, base, base}
	completions := 0
	_, err = hotgauge.RunAllOpts(cfgs, hotgauge.CampaignOptions{
		OnProgress: func(p hotgauge.CampaignProgress) { completions++ },
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("progress callbacks: %d of %d runs\n", completions, len(cfgs))
	// Output:
	// progress callbacks: 3 of 3 runs
}

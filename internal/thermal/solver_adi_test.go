package thermal

import (
	"math"
	"math/rand"
	"testing"

	"hotgauge/internal/obs"
)

// adiShapes is kernelShapes plus extreme aspect ratios: long thin dies
// stress the per-direction Thomas systems (one direction nearly
// degenerate, the other very deep).
var adiShapes = func() []struct{ nx, ny, nl int } {
	return append(append([]struct{ nx, ny, nl int }{}, kernelShapes...),
		struct{ nx, ny, nl int }{61, 3, 4},
		struct{ nx, ny, nl int }{3, 59, 4},
		struct{ nx, ny, nl int }{2, 2, 11},
	)
}()

// TestADISweepsMatchReference validates the optimized Douglas–Gunn
// substep (precomputed Thomas coefficients, plane-vectorized sweeps)
// against the naive assemble-and-solve oracle, across uneven grids,
// extreme aspect ratios and randomized power fields.
func TestADISweepsMatchReference(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(303 + seed))
		for _, sh := range adiShapes {
			g := syntheticGrid(sh.nx, sh.ny, sh.nl, rng)
			u := randTemps(g.Cells(), rng)
			power := singleLayerPower(g, randPower(g.NX, g.NY, rng))
			dt := 20 * g.dtStable

			fast := append([]float64(nil), u...)
			ref := append([]float64(nil), u...)
			var a ADI
			a.advanceOnce(g, fast, power, dt)
			adiStepRef(g, ref, power, dt)

			for i := range ref {
				if !closeTo(fast[i], ref[i], 1e-9) {
					t.Fatalf("seed %d %dx%dx%d: cell %d: fast %.17g vs ref %.17g",
						seed, sh.nx, sh.ny, sh.nl, i, fast[i], ref[i])
				}
			}
		}
	}
}

// TestADISweepsMatchReferenceMultiActive repeats the oracle comparison
// with power injected on several grid layers at once — the stacked-die
// configuration the multi-frame Power path produces.
func TestADISweepsMatchReferenceMultiActive(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for _, sh := range adiShapes {
		g := syntheticGrid(sh.nx, sh.ny, sh.nl, rng)
		u := randTemps(g.Cells(), rng)
		power := multiLayerPower(g, rng)
		dt := 20 * g.dtStable

		fast := append([]float64(nil), u...)
		ref := append([]float64(nil), u...)
		var a ADI
		a.advanceOnce(g, fast, power, dt)
		adiStepRef(g, ref, power, dt)

		for i := range ref {
			if !closeTo(fast[i], ref[i], 1e-9) {
				t.Fatalf("%dx%dx%d: cell %d: fast %.17g vs ref %.17g",
					sh.nx, sh.ny, sh.nl, i, fast[i], ref[i])
			}
		}
	}
}

// TestADICoefficientReuse pins the coefficient cache: a second substep at
// the same dt must reuse the prepared Thomas coefficients and still match
// the oracle (a stale-cache bug would show up as a mismatch after the
// grid or dt changes).
func TestADICoefficientReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	var a ADI
	for _, dtF := range []float64{5, 50, 5} { // revisit the first dt
		for _, sh := range []struct{ nx, ny, nl int }{{9, 8, 5}, {7, 1, 3}} {
			g := syntheticGrid(sh.nx, sh.ny, sh.nl, rng)
			u := randTemps(g.Cells(), rng)
			power := singleLayerPower(g, randPower(g.NX, g.NY, rng))
			dt := dtF * g.dtStable
			fast := append([]float64(nil), u...)
			ref := append([]float64(nil), u...)
			a.advanceOnce(g, fast, power, dt)
			adiStepRef(g, ref, power, dt)
			for i := range ref {
				if !closeTo(fast[i], ref[i], 1e-9) {
					t.Fatalf("dt=%v·stable %dx%dx%d: cell %d: fast %.17g vs ref %.17g",
						dtF, sh.nx, sh.ny, sh.nl, i, fast[i], ref[i])
				}
			}
		}
	}
}

// TestSolverAccuracyTable is the documented accuracy contract per
// (solver, dt): each solver integrates a power transient for 1 ms from a
// cold start and must land within tol [°C] (max over cells) of the
// fine-substep reference integration at dt ≤ dtStable. These bounds are
// what "matched accuracy" means in BENCH_thermal comparisons; tighten
// them only with bench evidence.
func TestSolverAccuracyTable(t *testing.T) {
	cases := []struct {
		name   string
		solver func() Solver
		dtF    float64 // simulation timestep in units of dtStable
		tol    float64 // max abs error vs fine reference [°C]
	}{
		{"explicit/dt=1", func() Solver { return &Explicit{} }, 1, 1e-9},
		{"explicit/dt=20", func() Solver { return &Explicit{} }, 20, 1e-9},
		{"adi/dt=1", func() Solver { return &ADI{} }, 1, 5e-3},
		{"adi/dt=5", func() Solver { return &ADI{} }, 5, 1e-2},
		{"adi/dt=20", func() Solver { return &ADI{} }, 20, 0.05},
		{"adi/dt=75", func() Solver { return &ADI{} }, 75, 0.1},
		{"implicit/dt=20", func() Solver { return &Implicit{} }, 20, 0.15},
		{"implicit/dt=75", func() Solver { return &Implicit{} }, 75, 0.3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := newTestGrid(t)
			power := uniformPower(g, 3.0)
			power.Frames[0].Data[g.NY/2*g.NX+g.NX/2] += 1.0 // hotspot source

			dt := tc.dtF * g.dtStable
			steps := int(math.Ceil(1e-3 / dt))
			s := g.NewState(DefaultAmbient)
			ref := s.Clone()
			solver := tc.solver()
			for k := 0; k < steps; k++ {
				if err := solver.Step(g, s, power, dt); err != nil {
					t.Fatal(err)
				}
				refExplicitStep(g, ref, power, dt)
			}
			worst := 0.0
			for i := range ref.T {
				if d := math.Abs(s.T[i] - ref.T[i]); d > worst {
					worst = d
				}
			}
			if worst > tc.tol {
				t.Fatalf("max error %.3g °C after %d steps of %.3g·dtStable exceeds documented tolerance %.3g",
					worst, steps, tc.dtF, tc.tol)
			}
			// The peak cell drives severity; it must be at least as good
			// as the field-wide bound.
			if d := math.Abs(g.MaxTemp(s) - g.MaxTemp(ref)); d > tc.tol {
				t.Fatalf("peak-temperature error %.3g °C exceeds tolerance %.3g", d, tc.tol)
			}
		})
	}
}

// TestADIUnconditionallyStable drives single ADI substeps at 2000× the
// explicit stability bound (subdivision disabled): every field must stay
// finite and bounded, and the distance to the SOR steady state must
// contract substantially instead of oscillating or diverging. (Full
// convergence is not expected: Douglas–Gunn under-relaxes the slowest
// modes at giant dt — that is precisely why the sim-level steady-state
// fast path jumps via SolveSteady rather than giant ADI steps.)
func TestADIUnconditionallyStable(t *testing.T) {
	g := newTestGrid(t)
	power := uniformPower(g, 4.0)
	steady := g.NewState(DefaultAmbient)
	if err := WarmStart(g, steady, power); err != nil {
		t.Fatal(err)
	}
	if _, err := SolveSteady(g, steady, power, 1e-7, 0); err != nil {
		t.Fatal(err)
	}
	distTo := func(s *State) float64 {
		worst := 0.0
		for i := range s.T {
			if math.IsNaN(s.T[i]) || math.IsInf(s.T[i], 0) {
				t.Fatalf("cell %d is not finite: %v", i, s.T[i])
			}
			if d := math.Abs(s.T[i] - steady.T[i]); d > worst {
				worst = d
			}
		}
		return worst
	}

	s := g.NewState(DefaultAmbient)
	solver := &ADI{ErrTol: math.Inf(1), MaxSubsteps: 1}
	dt := 2000 * g.dtStable
	dist0 := distTo(s)
	for k := 0; k < 200; k++ {
		if err := solver.Step(g, s, power, dt); err != nil {
			t.Fatal(err)
		}
	}
	if d := distTo(s); d > dist0/4 {
		t.Fatalf("after 200 giant steps still %.3g °C from steady (started %.3g): not contracting", d, dist0)
	}
	maxSteady := g.MaxTemp(steady)
	if maxT := g.MaxTemp(s); maxT > maxSteady+1 {
		t.Fatalf("field overshot steady state: max %.3f vs steady max %.3f", maxT, maxSteady)
	}
}

// TestADIAdaptiveSubstepping pins the adaptive policy at both ends: a
// quiescent frame (field already in equilibrium with the power map)
// takes exactly one substep and banks the explicit-equivalent savings,
// while a cold-start transient subdivides and still meets ErrTol
// against the fine reference.
func TestADIAdaptiveSubstepping(t *testing.T) {
	g := newTestGrid(t)
	power := uniformPower(g, 4.0)
	dt := 200e-6

	// Quiescent: start at steady state.
	s := g.NewState(DefaultAmbient)
	if err := WarmStart(g, s, power); err != nil {
		t.Fatal(err)
	}
	if _, err := SolveSteady(g, s, power, 1e-7, 0); err != nil {
		t.Fatal(err)
	}
	solver := &ADI{Substeps: &obs.Counter{}, Saved: &obs.Counter{}, StabilityHits: &obs.Counter{}}
	if err := solver.Step(g, s, power, dt); err != nil {
		t.Fatal(err)
	}
	if n := solver.Substeps.Value(); n != 1 {
		t.Fatalf("quiescent frame took %d substeps, want 1", n)
	}
	if saved := solver.Saved.Value(); saved <= 0 {
		t.Fatalf("quiescent frame saved %d explicit-equivalent substeps, want > 0", saved)
	}

	// Transient: cold start under the same power, one full timestep.
	cold := g.NewState(DefaultAmbient)
	ref := cold.Clone()
	transient := &ADI{Substeps: &obs.Counter{}}
	if err := transient.Step(g, cold, power, dt); err != nil {
		t.Fatal(err)
	}
	refExplicitStep(g, ref, power, dt)
	tol := 0.1 // the solver's default ErrTol
	for i := range ref.T {
		if d := math.Abs(cold.T[i] - ref.T[i]); d > tol {
			t.Fatalf("cell %d: transient error %.3g exceeds ErrTol %.3g (substeps=%d)",
				i, d, tol, transient.Substeps.Value())
		}
	}
}

func TestADIStepNoAllocsAfterWarmup(t *testing.T) {
	g := newTestGrid(t)
	power := uniformPower(g, 2.0)
	s := g.NewState(DefaultAmbient)
	var solver ADI
	if err := solver.Step(g, s, power, 200e-6); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := solver.Step(g, s, power, 200e-6); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ADI.Step allocates %v objects per call after warmup", allocs)
	}
}

package core

import (
	"testing"

	"hotgauge/internal/geometry"
)

// Equivalence tests: the chord-decomposed sliding-window MLTD scan
// (mltd_fast.go) against the per-cell disk reference MLTDAt. Both
// minimize over identical cell sets and subtract identically, so the
// comparison is exact (==), not within a tolerance — including on
// degenerate 1-wide fields and radii that cover the whole die.

func newRadiusAnalyzer(t *testing.T, f *geometry.Field, radius float64) *Analyzer {
	t.Helper()
	def := DefaultDefinition()
	def.Radius = radius
	a, err := NewAnalyzer(f, def)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMLTDScanBitEqualToPerCellReference(t *testing.T) {
	shapes := []struct{ nx, ny int }{
		{1, 40}, {40, 1}, {2, 2}, {5, 5}, {33, 27}, {46, 31},
	}
	radii := []float64{0.15, 0.3, 1.0, 2.05, 6.0}
	seed := int64(0)
	for _, sh := range shapes {
		for _, r := range radii {
			seed++
			f := gaussianField(sh.nx, sh.ny, 0.1, 55, seed, 4, 40)
			a := newRadiusAnalyzer(t, f, r)
			scan := a.mltdScan(f)
			for iy := 0; iy < sh.ny; iy++ {
				for ix := 0; ix < sh.nx; ix++ {
					want := a.MLTDAt(f, ix, iy)
					if got := scan[iy*sh.nx+ix]; got != want {
						t.Fatalf("%dx%d r=%v: cell (%d,%d): scan %.17g != MLTDAt %.17g",
							sh.nx, sh.ny, r, ix, iy, got, want)
					}
				}
			}
		}
	}
}

func TestMLTDFieldBitEqualToPerCellReference(t *testing.T) {
	f := gaussianField(38, 29, 0.1, 60, 77, 5, 45)
	a := newRadiusAnalyzer(t, f, 1.0)
	m := a.MLTDField(f)
	for iy := 0; iy < f.NY; iy++ {
		for ix := 0; ix < f.NX; ix++ {
			if got, want := m.At(ix, iy), a.MLTDAt(f, ix, iy); got != want {
				t.Fatalf("cell (%d,%d): field %.17g != MLTDAt %.17g", ix, iy, got, want)
			}
		}
	}
}

func TestMaxMLTDMatchesPerCellReference(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		f := gaussianField(42, 33, 0.1, 58, seed, 5, 50)
		a := newRadiusAnalyzer(t, f, 1.0)
		want := 0.0
		for iy := 0; iy < f.NY; iy++ {
			for ix := 0; ix < f.NX; ix++ {
				if v := a.MLTDAt(f, ix, iy); v > want {
					want = v
				}
			}
		}
		if got := a.MaxMLTD(f); got != want {
			t.Fatalf("seed %d: MaxMLTD %.17g != per-cell max %.17g", seed, got, want)
		}
	}
}

// TestDetectAgreesOnBothCostPaths drives Detect through sparse frames
// (few hot candidates, per-candidate disk scan) and dense frames (base
// temperature above the threshold everywhere, sliding-window scan) and
// checks both against the definition evaluated with the reference MLTDAt
// at every candidate.
func TestDetectAgreesOnBothCostPaths(t *testing.T) {
	for _, base := range []float64{62, 95} {
		for seed := int64(1); seed <= 4; seed++ {
			f := gaussianField(45, 32, 0.1, base, seed, 6, 30)
			a := newRadiusAnalyzer(t, f, 1.0)
			var want []Hotspot
			for _, c := range a.Candidates(f) {
				if c.Temp <= a.def.TempThreshold {
					continue
				}
				c.MLTD = a.MLTDAt(f, c.IX, c.IY)
				if c.MLTD > a.def.MLTDThreshold {
					want = append(want, c)
				}
			}
			got := a.Detect(f)
			if len(got) != len(want) {
				t.Fatalf("base %v seed %d: Detect found %d hotspots, reference %d",
					base, seed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("base %v seed %d: hotspot %d: %+v != %+v", base, seed, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMLTDScanNoAllocsAfterWarmup(t *testing.T) {
	f := gaussianField(46, 31, 0.1, 60, 13, 5, 45)
	a := newRadiusAnalyzer(t, f, 1.0)
	a.MaxMLTD(f) // warm the scratch buffers
	allocs := testing.AllocsPerRun(10, func() {
		a.MaxMLTD(f)
		a.MaxSeverity(f)
	})
	if allocs != 0 {
		t.Fatalf("MLTD scan allocates %v objects per frame after warmup", allocs)
	}
}

package obs

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile into path and returns the stop
// function that ends the profile and closes the file. The CLIs wire
// this to their -pprof-cpu flag.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path after forcing a GC so
// the profile reflects live allocations, not garbage.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// WriteMetricsJSON dumps a snapshot of the registry to path as indented
// JSON — the -metrics-json artifact.
func WriteMetricsJSON(path string, r *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WriteJSON(f)
}

// Package serve is the campaign service daemon behind cmd/hotgauged: a
// JSON-over-HTTP front end that turns the batch toolchain into a
// long-running service. Clients POST a campaign (a list of run specs),
// poll job status, stream live progress as SSE or NDJSON (fed by
// sim.CampaignCtx's OnProgress/OnResult hooks), and fetch per-run
// results and Section-4-style text reports.
//
// The subsystem is built from three pieces: a bounded job queue with
// explicit backpressure (HTTP 429 + Retry-After when full), a worker
// pool that executes each job as a sim.CampaignCtx with per-job
// cancellation, and a content-addressed result cache — the canonical
// hash of each normalized sim.Config (Config.Hash) addresses its
// marshaled result under an LRU byte budget, so resubmitted configs are
// served byte-identically without re-simulation. Graceful shutdown
// drains in-flight jobs under a deadline while cancelling queued ones.
// Every moving part reports into an obs.Registry exposed at /metrics,
// with readiness (queue depth, in-flight jobs) at /healthz.
//
// The execution path is fault-tolerant: panicking, diverging or wedged
// runs fail alone with per-run attribution (sim.RunCtx's panic
// isolation plus Options.RunTimeout, counted in serve/timeouts), runs
// failing transiently are retried with backoff (Options.Retries), jobs
// are bounded by Options.JobTimeout, and submission bodies by
// Options.MaxBodyBytes (413). Options.FaultRate wires internal/fault's
// random injection into every run for dev-mode recovery drills.
package serve

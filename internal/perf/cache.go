package perf

import "fmt"

// Cache is a set-associative, true-LRU cache model. It tracks tags only
// (no data), which is all a timing/activity model needs.
type Cache struct {
	sets, ways int
	lineShift  uint
	setMask    uint64

	lines []cacheLine // sets*ways entries, way-major within a set
	clock uint64      // LRU timestamp source

	Hits, Misses uint64
}

type cacheLine struct {
	tag   uint64
	used  uint64 // last-access timestamp
	valid bool
}

// NewCache builds a cache of the given total size, associativity and line
// size. Size must be a multiple of ways*lineSize and the set count a power
// of two.
func NewCache(size, ways, lineSize int) (*Cache, error) {
	if size <= 0 || ways <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("perf: invalid cache geometry %d/%d/%d", size, ways, lineSize)
	}
	if size%(ways*lineSize) != 0 {
		return nil, fmt.Errorf("perf: size %d not divisible by ways*line %d", size, ways*lineSize)
	}
	sets := size / (ways * lineSize)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("perf: set count %d not a power of two", sets)
	}
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}
	return &Cache{
		sets: sets, ways: ways, lineShift: shift, setMask: uint64(sets - 1),
		lines: make([]cacheLine, sets*ways),
	}, nil
}

// MustNewCache is NewCache for known-good geometries.
func MustNewCache(size, ways, lineSize int) *Cache {
	c, err := NewCache(size, ways, lineSize)
	if err != nil {
		panic(err)
	}
	return c
}

// Access looks the address up, updating LRU state and hit/miss counters,
// and installs the line on a miss (evicting the LRU way). It reports
// whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line&c.setMask) * c.ways
	c.clock++
	victim, oldest := set, ^uint64(0)
	for w := set; w < set+c.ways; w++ {
		l := &c.lines[w]
		if l.valid && l.tag == line {
			l.used = c.clock
			c.Hits++
			return true
		}
		if !l.valid {
			victim, oldest = w, 0
		} else if l.used < oldest {
			victim, oldest = w, l.used
		}
	}
	c.Misses++
	c.lines[victim] = cacheLine{tag: line, used: c.clock, valid: true}
	return false
}

// Probe reports whether the address is resident without disturbing LRU
// state or counters.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line&c.setMask) * c.ways
	for w := set; w < set+c.ways; w++ {
		if c.lines[w].valid && c.lines[w].tag == line {
			return true
		}
	}
	return false
}

// Install brings the address's line in without counting a hit or a miss
// (used by the prefetcher).
func (c *Cache) Install(addr uint64) {
	line := addr >> c.lineShift
	set := int(line&c.setMask) * c.ways
	c.clock++
	victim, oldest := set, ^uint64(0)
	for w := set; w < set+c.ways; w++ {
		l := &c.lines[w]
		if l.valid && l.tag == line {
			return // already resident; leave LRU alone
		}
		if !l.valid {
			victim, oldest = w, 0
		} else if l.used < oldest {
			victim, oldest = w, l.used
		}
	}
	c.lines[victim] = cacheLine{tag: line, used: c.clock, valid: true}
}

// Accesses returns the total number of counted accesses.
func (c *Cache) Accesses() uint64 { return c.Hits + c.Misses }

// ResetCounters zeroes the hit/miss counters but keeps cache contents, so
// per-timestep statistics can be windowed.
func (c *Cache) ResetCounters() { c.Hits, c.Misses = 0, 0 }

// Hierarchy is the three-level private + shared-L3 cache system of
// Table I, with a next-line prefetcher covering sequential streams (real
// parts prefetch; without it, streaming workloads would serialize on DRAM).
type Hierarchy struct {
	L1I, L1D, L2, L3 *Cache
	cfg              Config

	// Per-window event counters (reset with ResetCounters).
	DataAccesses uint64
	MemAccesses  uint64 // accesses that went all the way to DRAM
	Prefetches   uint64
}

// NewHierarchy builds the hierarchy for the given configuration.
func NewHierarchy(cfg Config) (*Hierarchy, error) {
	l1i, err := NewCache(cfg.L1ISize, cfg.L1IWays, cfg.LineSize)
	if err != nil {
		return nil, err
	}
	l1d, err := NewCache(cfg.L1DSize, cfg.L1DWays, cfg.LineSize)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(cfg.L2Size, cfg.L2Ways, cfg.LineSize)
	if err != nil {
		return nil, err
	}
	l3, err := NewCache(cfg.L3Size, cfg.L3Ways, cfg.LineSize)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, L3: l3, cfg: cfg}, nil
}

// prefetchDepth is how many lines ahead the stream prefetcher runs. Depth
// > 1 keeps sequential chains intact even when out-of-order issue reorders
// nearby accesses.
const prefetchDepth = 4

// Data performs a data-side access and returns its latency in cycles.
func (h *Hierarchy) Data(addr uint64) int {
	h.DataAccesses++
	hit := h.L1D.Access(addr)
	// Stream prefetcher: pull the following lines toward the core so
	// sequential streams hit after the first touch. Issued on both hits
	// and misses (tagged-prefetch behaviour); without it, stride-64
	// streams would alternate miss/hit forever.
	for d := uint64(1); d <= prefetchDepth; d++ {
		next := addr + d*uint64(h.cfg.LineSize)
		if !h.L1D.Probe(next) {
			h.Prefetches++
			h.L1D.Install(next)
			h.L2.Install(next)
		}
	}
	if hit {
		return h.cfg.L1Lat
	}
	if h.L2.Access(addr) {
		return h.cfg.L2Lat
	}
	if h.L3.Access(addr) {
		return h.cfg.L3Lat
	}
	h.MemAccesses++
	return h.cfg.MemLat
}

// Inst performs an instruction-side access and returns its latency.
// Instruction misses go through L2/L3 like data. The front end runs the
// same next-line prefetcher as the data side, so straight-line code hits
// after the first touch of a region.
func (h *Hierarchy) Inst(addr uint64) int {
	hit := h.L1I.Access(addr)
	for d := uint64(1); d <= prefetchDepth; d++ {
		next := addr + d*uint64(h.cfg.LineSize)
		if !h.L1I.Probe(next) {
			h.Prefetches++
			h.L1I.Install(next)
		}
	}
	if hit {
		return h.cfg.L1Lat
	}
	if h.L2.Access(addr) {
		return h.cfg.L2Lat
	}
	if h.L3.Access(addr) {
		return h.cfg.L3Lat
	}
	h.MemAccesses++
	return h.cfg.MemLat
}

// Warm pre-populates the hierarchy with the trailing portion of a working
// set of the given size plus the code footprint, emulating the cache
// warm-up the paper performs before every region of interest. Without it,
// cold compulsory misses would need tens of millions of simulated cycles
// to drain and would masquerade as steady-state DRAM traffic.
func (h *Hierarchy) Warm(workingSet, codeFootprint uint64) {
	line := uint64(h.cfg.LineSize)
	span := workingSet
	if limit := 2 * uint64(h.cfg.L3Size); span > limit {
		span = limit // lines beyond ~L3 capacity cannot stay resident anyway
	}
	for a := uint64(0); a < span; a += line {
		addr := workingSet - span + a
		h.L3.Install(addr)
		h.L2.Install(addr)
		h.L1D.Install(addr)
	}
	for a := uint64(0); a < codeFootprint; a += line {
		h.L1I.Install(a)
		h.L2.Install(a)
		h.L3.Install(a)
	}
}

// ResetCounters zeroes all event counters (contents are preserved).
func (h *Hierarchy) ResetCounters() {
	h.L1I.ResetCounters()
	h.L1D.ResetCounters()
	h.L2.ResetCounters()
	h.L3.ResetCounters()
	h.DataAccesses, h.MemAccesses, h.Prefetches = 0, 0, 0
}

package power

import (
	"math"
	"testing"

	"hotgauge/internal/floorplan"
	"hotgauge/internal/perf"
	"hotgauge/internal/tech"
	"hotgauge/internal/workload"
)

func newModel(t *testing.T, cfg floorplan.Config) *Model {
	t.Helper()
	fp, err := floorplan.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(fp, tech.TurboPoint)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func activityFor(t *testing.T, name string, step int) map[floorplan.Kind]float64 {
	t.Helper()
	p, err := workload.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	src, err := perf.NewIntervalModel(perf.DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	return src.Step(step, workload.TimestepCycles).Unit
}

func TestComputeProducesPowerForEveryUnit(t *testing.T) {
	m := newModel(t, floorplan.Config{Node: tech.Node14})
	var in Input
	in.CoreActivity[0] = activityFor(t, "bzip2", 0)
	res := m.Compute(in)
	for _, u := range m.Floorplan().Units {
		if res.Dynamic[u.Name] <= 0 {
			t.Errorf("unit %s has non-positive dynamic power", u.Name)
		}
		if res.Leakage[u.Name] <= 0 {
			t.Errorf("unit %s has non-positive leakage", u.Name)
		}
	}
}

func TestActiveCoreDominatesIdleCores(t *testing.T) {
	m := newModel(t, floorplan.Config{Node: tech.Node7})
	var in Input
	in.CoreActivity[3] = activityFor(t, "namd", 0)
	res := m.Compute(in)
	active := m.CorePower(res, 3)
	for c := 0; c < floorplan.NumCores; c++ {
		if c == 3 {
			continue
		}
		if idle := m.CorePower(res, c); idle > active/3 {
			t.Fatalf("idle core %d power %.2f W not ≪ active %.2f W", c, idle, active)
		}
	}
}

func TestCorePowerInPlausibleRange(t *testing.T) {
	// Calibration target: a heavy workload at 14 nm turbo draws roughly
	// 10-25 W per core; at 7 nm the same workload draws ~0.64×.
	m14 := newModel(t, floorplan.Config{Node: tech.Node14})
	var in Input
	in.CoreActivity[0] = activityFor(t, "bzip2", 0)
	p14 := m14.CorePower(m14.Compute(in), 0)
	if p14 < 8 || p14 > 28 {
		t.Fatalf("14nm bzip2 core power = %.1f W, want 8-28 W", p14)
	}
	m7 := newModel(t, floorplan.Config{Node: tech.Node7})
	p7 := m7.CorePower(m7.Compute(in), 0)
	ratio := p7 / p14
	if ratio < 0.55 || ratio > 0.85 {
		t.Fatalf("7nm/14nm core power ratio = %.2f, want ≈ 0.64 (dynamic) + leakage effects", ratio)
	}
}

func TestPowerDensityMatchesSection2A(t *testing.T) {
	// §II-A: power density ≳ 8 W/mm² at 7 nm for bzip2, roughly 2× what
	// Dennard scaling would have predicted from the 14 nm baseline.
	m7 := newModel(t, floorplan.Config{Node: tech.Node7})
	m14 := newModel(t, floorplan.Config{Node: tech.Node14})
	var in Input
	in.CoreActivity[0] = activityFor(t, "bzip2", 0)
	d7 := m7.PowerDensity(m7.Compute(in), 0)
	d14 := m14.PowerDensity(m14.Compute(in), 0)
	if d7 < 6 || d7 > 12 {
		t.Fatalf("7nm bzip2 power density = %.1f W/mm², want ≈ 8", d7)
	}
	if r := d7 / d14; r < 2.0 || r > 3.2 {
		t.Fatalf("7nm/14nm density ratio = %.2f, want ≈ 2.56", r)
	}
}

func TestLeakageGrowsExponentiallyWithTemperature(t *testing.T) {
	m := newModel(t, floorplan.Config{Node: tech.Node7})
	var in Input
	in.CoreActivity[0] = activityFor(t, "gcc", 0)
	in.TempDefault = 45
	cold := m.Compute(in)
	in.TempDefault = 45 + LeakTempSlope // one e-fold hotter
	hot := m.Compute(in)
	for _, u := range m.Floorplan().Units {
		r := hot.Leakage[u.Name] / cold.Leakage[u.Name]
		if math.Abs(r-math.E) > 1e-6 {
			t.Fatalf("unit %s leakage ratio = %v, want e", u.Name, r)
		}
		if hot.Dynamic[u.Name] != cold.Dynamic[u.Name] {
			t.Fatalf("dynamic power of %s changed with temperature", u.Name)
		}
	}
}

func TestUnitTemperatureOverridesDefault(t *testing.T) {
	m := newModel(t, floorplan.Config{Node: tech.Node7})
	var in Input
	in.CoreActivity[0] = activityFor(t, "gcc", 0)
	in.UnitTemp = map[string]float64{"core0.cALU": 120}
	in.TempDefault = 45
	res := m.Compute(in)
	var calu0, calu1 float64
	for _, u := range m.Floorplan().Units {
		switch u.Name {
		case "core0.cALU":
			calu0 = res.Leakage[u.Name]
		case "core1.cALU":
			calu1 = res.Leakage[u.Name]
		}
	}
	if calu0 <= calu1 {
		t.Fatalf("hot unit leakage %.3g not above cool unit %.3g", calu0, calu1)
	}
}

func TestUnitScalingReducesPowerDensityOnlyOfTarget(t *testing.T) {
	// The §V-A premise: scaling a unit's area by k divides its power
	// density by ≈k while its total (dynamic) power stays constant.
	base := newModel(t, floorplan.Config{Node: tech.Node7})
	scaled := newModel(t, floorplan.Config{Node: tech.Node7,
		KindScale: map[floorplan.Kind]float64{floorplan.KindFpIWin: 10}})
	var in Input
	in.CoreActivity[0] = activityFor(t, "milc", 0)
	rb, rs := base.Compute(in), scaled.Compute(in)

	bu, _ := base.Floorplan().Unit("core0.fpIWin")
	su, _ := scaled.Floorplan().Unit("core0.fpIWin")
	if math.Abs(rs.Dynamic["core0.fpIWin"]/rb.Dynamic["core0.fpIWin"]-1) > 1e-9 {
		t.Fatal("dynamic power changed under area scaling")
	}
	db := rb.Dynamic["core0.fpIWin"] / bu.Area()
	ds := rs.Dynamic["core0.fpIWin"] / su.Area()
	if r := db / ds; math.Abs(r-10) > 0.1 {
		t.Fatalf("density reduction = %.2f, want 10", r)
	}
}

func TestHotUnitsHaveHighestPowerDensity(t *testing.T) {
	// Fig. 12 prerequisite: the paper's hotspot units must be the densest.
	m := newModel(t, floorplan.Config{Node: tech.Node7})
	var in Input
	in.CoreActivity[0] = activityFor(t, "gcc", 0)
	res := m.Compute(in)
	density := func(name string) float64 {
		u, ok := m.Floorplan().Unit(name)
		if !ok {
			t.Fatalf("no unit %s", name)
		}
		return res.Total(name) / u.Area()
	}
	hot := density("core0.cALU")
	for _, cool := range []string{"core0.L2", "core0.L1D", "L3_0", "SA"} {
		if density(cool) >= hot {
			t.Errorf("%s density %.2f ≥ cALU density %.2f", cool, density(cool), hot)
		}
	}
}

func TestEffectiveCdynValidationMatchesPaper(t *testing.T) {
	rows14, avg14, err := ValidateCdyn(tech.Node14)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows14) != 5 {
		t.Fatalf("got %d validation rows", len(rows14))
	}
	// Paper: 11% average error at 14 nm; require same ballpark.
	if avg14 > 0.16 {
		t.Fatalf("14nm avg |error| = %.0f%%, want ≤ 16%%", avg14*100)
	}
	_, avg10, err := ValidateCdyn(tech.Node10)
	if err != nil {
		t.Fatal(err)
	}
	if avg10 > 0.28 {
		t.Fatalf("10nm avg |error| = %.0f%%, want ≤ 28%%", avg10*100)
	}
	if avg10 < avg14 {
		t.Fatal("10nm error should exceed 14nm error (different µarch silicon)")
	}
	if _, _, err := ValidateCdyn(tech.Node7); err == nil {
		t.Fatal("7nm validation should fail: no silicon reference exists")
	}
}

func TestTotalPowerAndTotalAgree(t *testing.T) {
	m := newModel(t, floorplan.Config{Node: tech.Node14})
	var in Input
	in.CoreActivity[2] = activityFor(t, "hmmer", 0)
	res := m.Compute(in)
	sum := 0.0
	for _, u := range m.Floorplan().Units {
		sum += res.Total(u.Name)
	}
	if math.Abs(sum-res.TotalPower()) > 1e-9 {
		t.Fatalf("TotalPower %.3f != unit sum %.3f", res.TotalPower(), sum)
	}
}

func TestNewModelRejectsBadOperatingPoint(t *testing.T) {
	fp, _ := floorplan.New(floorplan.Config{Node: tech.Node14})
	if _, err := NewModel(fp, tech.OperatingPoint{}); err == nil {
		t.Fatal("zero operating point accepted")
	}
}

func TestAllIdleDieIsLowPower(t *testing.T) {
	m := newModel(t, floorplan.Config{Node: tech.Node7})
	res := m.Compute(Input{TempDefault: 40})
	if p := res.TotalPower(); p > 8 {
		t.Fatalf("fully idle die draws %.1f W, want a few watts at most", p)
	}
}

func TestLeakageClampedAtValidityLimit(t *testing.T) {
	// Beyond the model's validity range leakage must saturate (otherwise
	// an unthrottled thermal runaway diverges numerically).
	m := newModel(t, floorplan.Config{Node: tech.Node7})
	var in Input
	in.CoreActivity[0] = activityFor(t, "namd", 0)
	in.TempDefault = LeakTempCap
	capRes := m.Compute(in)
	in.TempDefault = 400
	hotRes := m.Compute(in)
	for _, u := range m.Floorplan().Units {
		if hotRes.Leakage[u.Name] != capRes.Leakage[u.Name] {
			t.Fatalf("unit %s leakage not clamped: %v vs %v",
				u.Name, hotRes.Leakage[u.Name], capRes.Leakage[u.Name])
		}
		if math.IsInf(hotRes.Leakage[u.Name], 0) || math.IsNaN(hotRes.Leakage[u.Name]) {
			t.Fatalf("unit %s leakage not finite", u.Name)
		}
	}
}

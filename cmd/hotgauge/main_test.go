package main

import (
	"testing"

	"hotgauge/internal/floorplan"
)

func TestParseScale(t *testing.T) {
	m, err := parseScale("fpIWin=10,RAT_INT=2.5")
	if err != nil {
		t.Fatal(err)
	}
	if m[floorplan.KindFpIWin] != 10 || m[floorplan.Kind("RAT_INT")] != 2.5 {
		t.Fatalf("parsed %v", m)
	}
	if m, err := parseScale(""); err != nil || m != nil {
		t.Fatalf("empty scale: %v %v", m, err)
	}
	for _, bad := range []string{"fpIWin", "fpIWin=", "fpIWin=abc", "=3"} {
		if _, err := parseScale(bad); err == nil && bad != "=3" {
			t.Errorf("bad entry %q accepted", bad)
		}
	}
}

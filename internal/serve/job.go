package serve

import (
	"context"
	"sync"
	"time"

	"hotgauge/internal/sim"
)

// JobState is a job's lifecycle state.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Run states within a job.
const (
	RunPending   = "pending"
	RunCached    = "cached" // served from the result cache
	RunDone      = "done"   // freshly simulated
	RunFailed    = "failed"
	RunSkipped   = "skipped"   // never ran: job cancelled first
	RunPredicted = "predicted" // resolved by surrogate triage, no exact sim
)

// RunStatus is the wire form of one run's state within a job.
type RunStatus struct {
	State      string `json:"state"`
	ConfigHash string `json:"config_hash"`
	Error      string `json:"error,omitempty"`
}

// Event is one progress record on a job's stream. Events carry absolute
// counters, so a consumer that misses intermediate events still observes
// monotonic progress.
type Event struct {
	Type      string   `json:"type"` // "status" on state changes, "progress" per completed run
	Job       string   `json:"job"`
	State     JobState `json:"state"`
	Completed int      `json:"completed"`
	Cached    int      `json:"cached"`
	Failed    int      `json:"failed"`
	Predicted int      `json:"predicted,omitempty"`
	Total     int      `json:"total"`
	ElapsedMS int64    `json:"elapsed_ms"`
	ETAMS     int64    `json:"eta_ms,omitempty"`
	Error     string   `json:"error,omitempty"`
}

// Job is one submitted campaign moving through the queue.
type Job struct {
	ID    string
	Specs []ConfigSpec

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     JobState
	cfgs      []sim.Config
	hashes    []string
	runs      []RunStatus
	results   [][]byte // marshaled RunView per run; nil until available
	completed int
	cached    int
	failed    int
	predicted int
	auditN    int
	auditSum  float64
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	events    []Event
	changed   chan struct{} // closed and replaced on every published event

	// recovered marks a job reconstructed from the journal by startup
	// replay rather than accepted over HTTP this process lifetime.
	recovered bool
	// dedupKey is the campaign content key registered in Server.dedup
	// while the job is non-terminal (empty when durability is off).
	dedupKey string
}

func newJob(parent context.Context, id string, specs []ConfigSpec, cfgs []sim.Config, hashes []string) *Job {
	ctx, cancel := context.WithCancel(parent)
	j := &Job{
		ID:        id,
		Specs:     specs,
		ctx:       ctx,
		cancel:    cancel,
		state:     JobQueued,
		cfgs:      cfgs,
		hashes:    hashes,
		runs:      make([]RunStatus, len(cfgs)),
		results:   make([][]byte, len(cfgs)),
		submitted: time.Now(),
		changed:   make(chan struct{}),
	}
	for i := range j.runs {
		j.runs[i] = RunStatus{State: RunPending, ConfigHash: hashes[i]}
	}
	return j
}

// restoreJob reconstructs a terminal job from its journal records. The
// run table is taken as journaled (with any still-pending runs marked
// skipped — a job can only be terminal-with-pending if its finished
// record was written by a crash-interrupted compaction) and the
// counters are recomputed from it. Result payloads are not restored
// eagerly: they rehydrate lazily from the result store on first access.
func restoreJob(parent context.Context, id string, specs []ConfigSpec, hashes []string, runs []RunStatus, state JobState, errMsg string) *Job {
	ctx, cancel := context.WithCancel(parent)
	j := &Job{
		ID:        id,
		Specs:     specs,
		ctx:       ctx,
		cancel:    cancel,
		state:     state,
		hashes:    hashes,
		runs:      append([]RunStatus(nil), runs...),
		results:   make([][]byte, len(runs)),
		errMsg:    errMsg,
		submitted: time.Now(),
		finished:  time.Now(),
		changed:   make(chan struct{}),
		recovered: true,
	}
	for i := range j.runs {
		switch j.runs[i].State {
		case RunPending:
			j.runs[i].State = RunSkipped
			j.completed++
			j.failed++
		case RunCached:
			j.completed++
			j.cached++
		case RunDone:
			j.completed++
		case RunPredicted:
			j.completed++
			j.predicted++
		case RunFailed, RunSkipped:
			j.completed++
			j.failed++
		}
	}
	cancel() // already terminal: there is nothing left to cancel
	j.mu.Lock()
	j.publishLocked("status")
	j.mu.Unlock()
	return j
}

// Cancel requests cancellation: the job's context is cancelled, which
// skips it if still queued and aborts its runs at the next step boundary
// if running. The state transition is published by the worker (or
// immediately, if the job never reached a worker and never will).
func (j *Job) Cancel() { j.cancel() }

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// publishLocked appends an event and wakes every stream. Callers hold mu.
func (j *Job) publishLocked(typ string) {
	ev := Event{
		Type:      typ,
		Job:       j.ID,
		State:     j.state,
		Completed: j.completed,
		Cached:    j.cached,
		Failed:    j.failed,
		Predicted: j.predicted,
		Total:     len(j.runs),
		Error:     j.errMsg,
	}
	if !j.started.IsZero() {
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		elapsed := end.Sub(j.started)
		ev.ElapsedMS = elapsed.Milliseconds()
		// ETA extrapolates from freshly simulated runs only: cache hits and
		// predicted-only resolutions complete in microseconds and would
		// make the remaining exact work look nearly free.
		if fresh := j.completed - j.cached - j.predicted; fresh > 0 && j.completed < len(j.runs) {
			perRun := elapsed / time.Duration(fresh)
			ev.ETAMS = (perRun * time.Duration(len(j.runs)-j.completed)).Milliseconds()
		}
	}
	j.events = append(j.events, ev)
	close(j.changed)
	j.changed = make(chan struct{})
}

// start transitions queued → running.
func (j *Job) start() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = JobRunning
	j.started = time.Now()
	j.publishLocked("status")
}

// finish transitions to a terminal state, marking still-pending runs as
// skipped, and reports whether it performed the transition. Idempotent:
// a second terminal transition is ignored (returning false), so a user
// cancel racing the worker resolves cleanly and counts once.
func (j *Job) finish(state JobState, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	for i := range j.runs {
		if j.runs[i].State == RunPending {
			j.runs[i].State = RunSkipped
			j.completed++
			j.failed++
		}
	}
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	j.publishLocked("status")
	return true
}

// setRunCached records a cache hit for run i.
func (j *Job) setRunCached(i int, data []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.results[i] = data
	j.runs[i].State = RunCached
	j.completed++
	j.cached++
	j.publishLocked("progress")
}

// setRunDone records a freshly simulated result for run i.
func (j *Job) setRunDone(i int, data []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.results[i] = data
	j.runs[i].State = RunDone
	j.completed++
	j.publishLocked("progress")
}

// setRunPredicted records a run resolved predicted-only by triage.
func (j *Job) setRunPredicted(i int, data []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.results[i] = data
	j.runs[i].State = RunPredicted
	j.completed++
	j.predicted++
	j.publishLocked("progress")
}

// addAudit folds one audited run's |predicted − exact| severity error
// into the job's audit tally (reported by /report).
func (j *Job) addAudit(absErr float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.auditN++
	j.auditSum += absErr
}

// auditStats returns the job's audit MAE and sample count.
func (j *Job) auditStats() (mae float64, n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.auditN == 0 {
		return 0, 0
	}
	return j.auditSum / float64(j.auditN), j.auditN
}

// setRunFailed records a per-run error (or a context-cancelled skip).
func (j *Job) setRunFailed(i int, err error, skipped bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.runs[i].State = RunFailed
	if skipped {
		j.runs[i].State = RunSkipped
	}
	j.runs[i].Error = err.Error()
	j.completed++
	j.failed++
	j.publishLocked("progress")
}

// failedCount returns how many runs failed or were skipped.
func (j *Job) failedCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

// eventsSince returns the events published at or after index i, the
// channel that will be closed on the next publish, and whether the job
// has reached a terminal state. A streaming handler loops: drain, flush,
// and either exit (terminal with nothing pending) or wait on the
// channel.
func (j *Job) eventsSince(i int) (evs []Event, changed <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < len(j.events) {
		evs = append(evs, j.events[i:]...)
	}
	return evs, j.changed, j.state.terminal()
}

// result returns run i's marshaled RunView, or nil if unavailable.
func (j *Job) result(i int) []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < 0 || i >= len(j.results) {
		return nil
	}
	return j.results[i]
}

// run returns run i's status snapshot.
func (j *Job) run(i int) (RunStatus, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < 0 || i >= len(j.runs) {
		return RunStatus{}, false
	}
	return j.runs[i], true
}

// restoreResult rehydrates run i's payload from the result store
// (restored jobs hold no bytes until first access). It never overwrites
// a payload that is already in memory.
func (j *Job) restoreResult(i int, data []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i >= 0 && i < len(j.results) && j.results[i] == nil {
		j.results[i] = data
	}
}

// JobStatus is the wire form of a job's full state.
type JobStatus struct {
	ID          string      `json:"id"`
	State       JobState    `json:"state"`
	Total       int         `json:"total"`
	Completed   int         `json:"completed"`
	Cached      int         `json:"cached"`
	Failed      int         `json:"failed"`
	Predicted   int         `json:"predicted,omitempty"`
	SubmittedAt time.Time   `json:"submitted_at"`
	StartedAt   *time.Time  `json:"started_at,omitempty"`
	FinishedAt  *time.Time  `json:"finished_at,omitempty"`
	Error       string      `json:"error,omitempty"`
	Recovered   bool        `json:"recovered,omitempty"`
	Runs        []RunStatus `json:"runs"`
}

// Status snapshots the job for the status endpoint.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.ID,
		State:       j.state,
		Total:       len(j.runs),
		Completed:   j.completed,
		Cached:      j.cached,
		Failed:      j.failed,
		Predicted:   j.predicted,
		SubmittedAt: j.submitted,
		Error:       j.errMsg,
		Recovered:   j.recovered,
		Runs:        append([]RunStatus(nil), j.runs...),
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

package thermal

import (
	"math"
	"runtime"
)

// Optimized kernels. Both solvers spend essentially all of their time in
// a 3-D seven-point stencil whose textbook form (solver_ref.go) pays
// seven data-dependent branches per cell for boundary handling. The
// kernels here peel the boundaries instead: per row, every absent
// neighbour gets a zero conductance paired with a subslice that aliases
// the row itself, so the interior loops are branch-free and bounds-check
// friendly. The explicit kernel additionally rewrites the flux into sum
// form, Σ gᵢ·Tᵢ − gSum·T with gSum hoisted per row, which nearly halves
// the per-cell FP work; the reassociation stays within a few ulp of the
// reference (validated to 1e-9 in solver_equiv_test.go). Rows are
// independent in the explicit substep, which is what makes row-band
// parallelism safe.

// parallelCells is the grid size above which Explicit.Step fans substeps
// out across row-band goroutines by default. Below it the fork/join
// overhead (a few µs per substep, ~20-75 substeps per Step) outweighs
// the win; the default 100 µm single-die grid (~13k cells) stays serial.
const parallelCells = 32768

// stepCell computes one explicit-substep cell in sum form given the
// lateral contribution lat (already multiplied by the conductances) and
// the cell's total conductance gSum. cp holds the row-constant
// convection+power-free additive term convG·ambient; pwv the cell's
// injected power (0 off the active layer).
func stepCell(t, lat, gDown, down, gUp, up, cp, pwv, gSum, invC float64) float64 {
	flux := lat + (gDown*down + gUp*up) + (cp + pwv) - gSum*t
	return t + flux*invC
}

// stepRows advances rows [r0, r1) of the explicit substep from cur into
// next; a row is one (layer, iy) line of NX cells, so global row r
// starts at flat index r*NX. power holds one plane slice per grid layer
// (nil for passive layers — see Grid.layerPower). It only reads cur and
// writes disjoint rows of next, so distinct ranges may run concurrently.
func stepRows(g *Grid, cur, next []float64, power [][]float64, zeros []float64, dt float64, r0, r1 int) {
	nx, ny, nl := g.NX, g.NY, g.NL
	plane := nx * ny
	amb := g.Ambient
	for r := r0; r < r1; r++ {
		l, iy := r/ny, r%ny
		gl := g.gLat[l]
		invC := dt / g.capC[l]
		i0 := r * nx

		// Zero conductances stand in for absent neighbours: the matching
		// subslice aliases the row itself, the loaded value is multiplied
		// by 0, and the term vanishes exactly — no per-cell branches.
		gN, gS, gDown, gUp, convG := 0.0, 0.0, 0.0, 0.0, 0.0
		nOff, sOff, dOff, uOff := 0, 0, 0, 0
		if iy > 0 {
			gN, nOff = gl, nx
		}
		if iy < ny-1 {
			gS, sOff = gl, nx
		}
		if l > 0 {
			gDown, dOff = g.gUp[l-1], plane
		}
		if l < nl-1 {
			gUp, uOff = g.gUp[l], plane
		} else {
			convG = g.gConv
		}
		c := cur[i0 : i0+nx]
		nn := cur[i0-nOff : i0-nOff+nx]
		ss := cur[i0+sOff : i0+sOff+nx]
		dd := cur[i0-dOff : i0-dOff+nx]
		uu := cur[i0+uOff : i0+uOff+nx]
		pw := zeros[:nx]
		lpw := power[l]
		if lpw != nil {
			pw = lpw[iy*nx : iy*nx+nx]
		}
		o := next[i0 : i0+nx]

		cp := convG * amb // row-constant convective inflow at ambient
		gEdge := gl + gN + gS + gDown + gUp + convG
		gInt := gEdge + gl

		if nx == 1 {
			t := c[0]
			o[0] = stepCell(t, gN*nn[0]+gS*ss[0], gDown, dd[0], gUp, uu[0], cp, pw[0], gEdge-gl, invC)
			continue
		}
		o[0] = stepCell(c[0], gl*c[1]+gN*nn[0]+gS*ss[0], gDown, dd[0], gUp, uu[0], cp, pw[0], gEdge, invC)

		if lpw == nil && l > 0 && l < nl-1 && iy > 0 && iy < ny-1 {
			// Pure-interior row (all of N/S/down/up present, no
			// convection, no power): the dominant case. One lateral
			// conductance multiplies the whole neighbour sum.
			gSum4 := 4*gl + gDown + gUp
			for ix := 1; ix < nx-1; ix++ {
				t := c[ix]
				lat := (c[ix-1] + c[ix+1]) + (nn[ix] + ss[ix])
				flux := gl*lat + (gDown*dd[ix] + gUp*uu[ix]) - gSum4*t
				o[ix] = t + flux*invC
			}
		} else {
			for ix := 1; ix < nx-1; ix++ {
				t := c[ix]
				lat := gl*(c[ix-1]+c[ix+1]) + (gN*nn[ix] + gS*ss[ix])
				o[ix] = stepCell(t, lat, gDown, dd[ix], gUp, uu[ix], cp, pw[ix], gInt, invC)
			}
		}
		ix := nx - 1
		o[ix] = stepCell(c[ix], gl*c[ix-1]+gN*nn[ix]+gS*ss[ix], gDown, dd[ix], gUp, uu[ix], cp, pw[ix], gEdge, invC)
	}
}

// gsSweep performs one in-place Gauss-Seidel sweep of the backward-Euler
// system and returns the largest per-cell update. Cells update in the
// same row-major order as gsSweepRef, so the mixed old/new neighbour
// reads — the defining property of Gauss-Seidel — are preserved. power
// holds one plane slice per grid layer (nil for passive layers). It
// cannot be parallelized without changing the iteration (it would become
// a Jacobi/red-black variant).
func gsSweep(g *Grid, old, t []float64, power [][]float64, zeros []float64, dt float64) float64 {
	nx, ny, nl := g.NX, g.NY, g.NL
	plane := nx * ny
	amb := g.Ambient
	maxDelta := 0.0
	rows := nl * ny
	for r := 0; r < rows; r++ {
		l, iy := r/ny, r%ny
		gl := g.gLat[l]
		cOverDt := g.capC[l] / dt
		i0 := r * nx

		gN, gS, gDown, gUp, convG := 0.0, 0.0, 0.0, 0.0, 0.0
		nOff, sOff, dOff, uOff := 0, 0, 0, 0
		if iy > 0 {
			gN, nOff = gl, nx
		}
		if iy < ny-1 {
			gS, sOff = gl, nx
		}
		if l > 0 {
			gDown, dOff = g.gUp[l-1], plane
		}
		if l < nl-1 {
			gUp, uOff = g.gUp[l], plane
		} else {
			convG = g.gConv
		}
		c := t[i0 : i0+nx]
		nn := t[i0-nOff : i0-nOff+nx]
		ss := t[i0+sOff : i0+sOff+nx]
		dd := t[i0-dOff : i0-dOff+nx]
		uu := t[i0+uOff : i0+uOff+nx]
		pw := zeros[:nx]
		if lpw := power[l]; lpw != nil {
			pw = lpw[iy*nx : iy*nx+nx]
		}
		oo := old[i0 : i0+nx]

		// The denominator only depends on which neighbours exist, so it
		// is row-invariant except for the lateral terms at the edges.
		convNum := convG * amb
		denEdge := cOverDt + gl + gN + gS + gDown + gUp + convG
		denInt := denEdge + gl

		gs := func(ix int, lat, den float64) {
			num := cOverDt*oo[ix] + lat + (gN*nn[ix] + gS*ss[ix])
			num += gDown*dd[ix] + gUp*uu[ix]
			num += convNum + pw[ix]
			nv := num / den
			if d := math.Abs(nv - c[ix]); d > maxDelta {
				maxDelta = d
			}
			c[ix] = nv
		}
		if nx == 1 {
			gs(0, 0, denEdge-gl)
			continue
		}
		gs(0, gl*c[1], denEdge)
		for ix := 1; ix < nx-1; ix++ {
			gs(ix, gl*c[ix-1]+gl*c[ix+1], denInt)
		}
		gs(nx-1, gl*c[nx-2], denEdge)
	}
	return maxDelta
}

// workerCount resolves how many row-band goroutines an explicit substep
// over g should use, honouring the solver's Workers override.
func (e *Explicit) workerCount(g *Grid) int {
	w := e.Workers
	if w == 0 {
		if g.Cells() < parallelCells {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	}
	return max(1, min(w, g.NL*g.NY))
}

package sim

import (
	"errors"
	"testing"

	"hotgauge/internal/obs"
	"hotgauge/internal/thermal"
)

func TestRunRecordsMetrics(t *testing.T) {
	cfg := fastConfig(t, "gcc", 4)
	cfg.Record.FieldEvery = 2
	cfg.Obs = obs.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := cfg.Obs.Snapshot()

	if got := s.Counters[MetricRuns]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricRuns, got)
	}
	if got := s.Counters[MetricSteps]; got != int64(res.StepsRun) {
		t.Errorf("%s = %d, want %d", MetricSteps, got, res.StepsRun)
	}
	if got := s.Counters[MetricPerfSteps]; got != int64(res.StepsRun) {
		t.Errorf("%s = %d, want %d", MetricPerfSteps, got, res.StepsRun)
	}
	if got := s.Counters[MetricPerfInstructions]; got <= 0 {
		t.Errorf("%s = %d, want > 0", MetricPerfInstructions, got)
	}
	if got := s.Counters[MetricFrames]; got != int64(len(res.Fields)) {
		t.Errorf("%s = %d, want %d", MetricFrames, got, len(res.Fields))
	}
	// The explicit solver splits each 200 µs step into multiple stable
	// substeps, so substeps > steps and every step hits the bound.
	if sub := s.Counters[MetricThermalSubsteps]; sub <= int64(res.StepsRun) {
		t.Errorf("%s = %d, want > %d", MetricThermalSubsteps, sub, res.StepsRun)
	}
	if got := s.Counters[MetricThermalStability]; got != int64(res.StepsRun) {
		t.Errorf("%s = %d, want %d", MetricThermalStability, got, res.StepsRun)
	}

	for _, name := range []string{MetricStageSetup, MetricStagePerf, MetricStagePower, MetricStageThermal, MetricStageDetect, MetricStageRecord, MetricRunTime} {
		if _, ok := s.Timers[name]; !ok {
			t.Errorf("timer %s missing from snapshot", name)
		}
	}
	// Per-step stage timers fire once per executed step.
	if got := s.Timers[MetricStageThermal].Count; got != int64(res.StepsRun) {
		t.Errorf("thermal stage count = %d, want %d", got, res.StepsRun)
	}
	// The stage breakdown should account for most of the run's wall
	// time (everything outside the stages is loop scaffolding).
	var stageTotal float64
	for _, st := range s.Stages(StagePrefix) {
		stageTotal += st.Total.Seconds()
	}
	if run := s.Timers[MetricRunTime].TotalSeconds; stageTotal < 0.5*run || stageTotal > 1.05*run {
		t.Errorf("stage total %.6fs vs run total %.6fs: breakdown does not sum to ~total", stageTotal, run)
	}
}

func TestRunWithNilRegistryUnchanged(t *testing.T) {
	cfg := fastConfig(t, "gcc", 4)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.NewRegistry()
	instr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.MaxTemp {
		if base.MaxTemp[i] != instr.MaxTemp[i] {
			t.Fatalf("instrumentation changed the physics at step %d", i)
		}
	}
}

func TestImplicitSolverMetrics(t *testing.T) {
	cfg := fastConfig(t, "gcc", 3)
	reg := obs.NewRegistry()
	cfg.Solver = &thermal.Implicit{
		Substeps:      reg.Counter(MetricThermalSubsteps),
		StabilityHits: reg.Counter(MetricThermalStability),
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricThermalSubsteps).Value(); got < 3 {
		t.Errorf("implicit sweeps = %d, want >= steps", got)
	}
}

func TestCampaignJoinsAllErrors(t *testing.T) {
	bad1 := fastConfig(t, "gcc", 4)
	bad1.Core = -1
	bad2 := fastConfig(t, "namd", 4)
	bad2.Steps = 0
	good := fastConfig(t, "gcc", 2)

	results, err := Campaign([]Config{bad1, good, bad2})
	if err == nil {
		t.Fatal("campaign swallowed errors")
	}
	// Both failures must be visible, not just the first.
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) {
		t.Fatalf("error %v does not unwrap to a joined list", err)
	}
	if n := len(joined.Unwrap()); n != 2 {
		t.Fatalf("joined %d errors, want 2: %v", n, err)
	}
	if results[1] == nil {
		t.Fatal("successful run's result dropped on partial failure")
	}
	if results[0] != nil || results[2] != nil {
		t.Fatal("failed runs must have nil results")
	}
}

func TestCampaignOptsProgressAndAggregation(t *testing.T) {
	cfgs := []Config{fastConfig(t, "gcc", 2), fastConfig(t, "namd", 2), fastConfig(t, "milc", 2)}
	reg := obs.NewRegistry()
	var seen []Progress
	_, err := CampaignOpts(cfgs, CampaignOptions{
		Workers:    2,
		Obs:        reg,
		OnProgress: func(p Progress) { seen = append(seen, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(cfgs) {
		t.Fatalf("progress callbacks = %d, want %d", len(seen), len(cfgs))
	}
	last := seen[len(seen)-1]
	if last.Completed != 3 || last.Total != 3 || last.Failed != 0 {
		t.Fatalf("final progress = %+v", last)
	}
	if last.ETA != 0 {
		t.Fatalf("final ETA = %v, want 0", last.ETA)
	}
	for _, p := range seen[:len(seen)-1] {
		if p.ETA <= 0 {
			t.Fatalf("mid-campaign ETA not estimated: %+v", p)
		}
	}

	s := reg.Snapshot()
	if got := s.Counters[MetricRuns]; got != 3 {
		t.Errorf("aggregated %s = %d, want 3", MetricRuns, got)
	}
	if got := s.Counters["campaign/completed"]; got != 3 {
		t.Errorf("campaign/completed = %d, want 3", got)
	}
	if got := s.Gauges["campaign/progress"]; got != 1 {
		t.Errorf("campaign/progress = %g, want 1", got)
	}
}
